// Write-ahead logging. A WALStore wraps any Store with an append-only,
// checksummed log so that a group of page operations — a B+-tree split, a
// kinetic build, any multi-page rebalance — commits atomically: after a
// crash at ANY write or sync boundary, recovery yields a store in which
// every committed batch is fully present and no uncommitted write is
// visible.
//
// # Log layout
//
// The log is a LogFile: a 24-byte header followed by records.
//
//	header:  magic "MOBIDXL1" | version u32 | page size u32 |
//	         meta page id u32 | CRC-32C of the first 20 bytes
//	record:  body length u32 | body | CRC-32C(body) u32
//	body:    LSN u64 | type u8 | payload
//
// Record types and payloads:
//
//	alloc  (1): page id u32
//	write  (2): page id u32 | page image (PageSize bytes)
//	free   (3): page id u32
//	commit (4): batch sequence number u64 | record count u32
//
// LSNs are assigned sequentially over the store's lifetime and are strictly
// consecutive within the log. Every record carries its own CRC-32C, so a
// torn append is detected and truncated at recovery; a batch is durable
// exactly when its commit record (and everything before it) verifies.
//
// # Commit protocol
//
// Begin opens a batch (reentrant: nested Begin/Commit pairs join the
// outermost batch). Inside a batch, Allocate delegates to the base store
// immediately (so page ids are assigned at once), while Write and Free are
// staged in memory. Commit appends the batch's records — allocs in
// allocation order, then final page images, then frees — followed by a
// commit record, syncs the log, and only then applies the batch to the
// volatile state: page images enter the in-memory page table, frees reach
// the base allocator. Rollback undoes the batch's base allocations (in
// reverse order) and discards the staged state. A failed commit append
// truncates the log back to the batch's start so the tail stays clean.
//
// # Checkpoint
//
// Checkpoint bounds the log: it writes every page image in the table to the
// base store, syncs the base (persisting the base allocator — FileStore's
// meta page — together with the data), then records the applied watermark
// (LSN + batch sequence) in a reserved WAL-meta page of the base store,
// syncs again, and truncates the log to its header. The watermark is
// written only after the allocator sync, so the durable base allocator is
// never behind the durable watermark.
//
// # Recovery
//
// OpenWALStore on a non-empty log verifies the header, reads the watermark
// from the WAL-meta page, scans the log verifying every record's CRC and
// LSN continuity, truncates the torn tail (records after the last commit
// record, or after the first framing break), and replays every committed
// batch with LSN beyond the watermark: allocs re-adopt their page ids,
// page images are staged into the table, frees are re-applied. Replay uses
// forcing semantics (Adopter) — an adopt of an already-live page or a
// disown of an already-free page is a no-op — so recovery is idempotent
// and tolerates a base store that crashed ahead of the watermark (e.g.
// mid-checkpoint). A corrupt WAL-meta page degrades to a full replay from
// LSN zero, which the same forcing semantics make safe.
package pager

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Typed failures of the write-ahead log layer.
var (
	// ErrWALCorrupt marks a log whose header, record framing, or mid-log
	// record checksum does not verify. A torn *tail* is not corruption —
	// recovery truncates it silently, as a crash mid-append leaves exactly
	// that.
	ErrWALCorrupt = errors.New("pager: wal corrupt")
	// ErrWALReplay marks a recovery whose log disagrees with the base
	// store (an adopt or free that cannot apply): the pair was not
	// produced by this WAL protocol.
	ErrWALReplay = errors.New("pager: wal replay diverged")
	// ErrBatchOpen is returned by operations that require no open batch.
	ErrBatchOpen = errors.New("pager: batch open")
	// ErrNoBatch is returned by Commit/Rollback without a Begin.
	ErrNoBatch = errors.New("pager: no open batch")
	// ErrBatchAborted is returned by the outermost Commit after a nested
	// Rollback poisoned the batch.
	ErrBatchAborted = errors.New("pager: batch aborted")
	// ErrStoreFailed marks a WALStore whose volatile state diverged from
	// its log (a post-commit apply failed); the store refuses further
	// writes. Reopening the store replays the log and recovers.
	ErrStoreFailed = errors.New("pager: store failed, reopen to recover")
)

// LogFile is the append-only device a WALStore logs to. MemLog and FileLog
// implement it; tests substitute crash-simulating implementations.
type LogFile interface {
	io.ReaderAt
	// Size returns the current length in bytes.
	Size() (int64, error)
	// Append writes b at the current end.
	Append(b []byte) error
	// Truncate discards everything at and after offset size.
	Truncate(size int64) error
	// Sync makes every completed Append and Truncate durable.
	Sync() error
	// Close releases the device.
	Close() error
}

// MemLog is an in-memory LogFile, for tests and volatile stores.
type MemLog struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// NewMemLogFrom returns an in-memory log holding a copy of the given
// image, for replaying captured (or deliberately corrupted) logs.
func NewMemLogFrom(img []byte) *MemLog {
	return &MemLog{buf: append([]byte(nil), img...)}
}

// Bytes returns a copy of the log's current contents.
func (m *MemLog) Bytes() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...)
}

// ReadAt implements io.ReaderAt.
func (m *MemLog) ReadAt(p []byte, off int64) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if off < 0 || off > int64(len(m.buf)) {
		return 0, io.EOF
	}
	n := copy(p, m.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Size implements LogFile.
func (m *MemLog) Size() (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.buf)), nil
}

// Append implements LogFile.
func (m *MemLog) Append(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, b...)
	return nil
}

// Truncate implements LogFile.
func (m *MemLog) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < 0 || size > int64(len(m.buf)) {
		return fmt.Errorf("pager: memlog truncate to %d of %d", size, len(m.buf))
	}
	m.buf = m.buf[:size]
	return nil
}

// Sync implements LogFile (memory is always "durable").
func (m *MemLog) Sync() error { return nil }

// Close implements LogFile.
func (m *MemLog) Close() error { return nil }

// FileLog is a LogFile backed by a real file.
type FileLog struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileLog opens (creating if absent, never truncating) the log file at
// path.
func OpenFileLog(path string) (*FileLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pager: open log %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("pager: stat log %s: %w", path, err), f.Close())
	}
	return &FileLog{f: f, size: st.Size()}, nil
}

// ReadAt implements io.ReaderAt.
func (l *FileLog) ReadAt(p []byte, off int64) (int, error) { return l.f.ReadAt(p, off) }

// Size implements LogFile.
func (l *FileLog) Size() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size, nil
}

// Append implements LogFile.
func (l *FileLog) Append(b []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, err := l.f.WriteAt(b, l.size); err != nil {
		return fmt.Errorf("pager: log append: %w", err)
	}
	l.size += int64(len(b))
	return nil
}

// Truncate implements LogFile.
func (l *FileLog) Truncate(size int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.f.Truncate(size); err != nil {
		return fmt.Errorf("pager: log truncate: %w", err)
	}
	l.size = size
	return nil
}

// Sync implements LogFile.
func (l *FileLog) Sync() error { return l.f.Sync() }

// Close implements LogFile.
func (l *FileLog) Close() error { return l.f.Close() }

// Syncer is implemented by stores with an explicit durability point
// (FileStore; wrappers forward it). A store without Sync is treated as
// always-durable.
type Syncer interface{ Sync() error }

// Adopter is implemented by stores whose allocator state WAL recovery can
// force: Adopt makes a specific page id live, Disown returns it to the
// free list. Both are no-ops when the page is already in the target state,
// which makes log replay idempotent. MemStore and FileStore implement it;
// ChecksumStore, FaultStore, RetryStore and Buffered forward it.
type Adopter interface {
	// Adopt makes id live. The page's contents are unspecified until
	// written.
	Adopt(id PageID) error
	// Disown makes id free.
	Disown(id PageID) error
}

// Batcher is implemented by stores that group operations into atomic
// batches. See RunBatch.
type Batcher interface {
	Begin() error
	Commit() error
	Rollback() error
}

// RunBatch runs fn inside an atomic batch when the store supports one
// (WALStore), so a multi-page mutation — a tree split, a bulk load —
// either commits whole or leaves no trace. On stores without batching it
// just runs fn. When fn fails the batch is rolled back and fn's error is
// returned (joined with the rollback's own error, if any).
func RunBatch(s Store, fn func() error) error {
	b, ok := s.(Batcher)
	if !ok {
		return fn()
	}
	if err := b.Begin(); err != nil {
		return err
	}
	if err := fn(); err != nil {
		return errors.Join(err, b.Rollback())
	}
	return b.Commit()
}

// Log and WAL-meta encoding.
const (
	walMagic     = "MOBIDXL1"
	walVer       = 1
	walHeaderLen = 24

	walMetaMagic = "MOBIDXWM"
	walMetaLen   = 32 // fixed prefix incl. CRC; rest of the page is unused

	recAlloc  = 1
	recWrite  = 2
	recFree   = 3
	recCommit = 4

	// recBodyMin is the smallest record body: LSN + type + a 4-byte id.
	recBodyMin = 8 + 1 + 4
)

// walRecord is one decoded log record.
type walRecord struct {
	lsn     uint64
	typ     byte
	page    PageID // alloc, write, free
	data    []byte // write: the page image (aliases the scan buffer)
	seq     uint64 // commit
	count   int    // commit: records in the batch before this one
	encoded int    // total encoded length in the log
}

// appendWALRecord encodes one record onto buf.
func appendWALRecord(buf []byte, lsn uint64, typ byte, payload []byte) []byte {
	body := 9 + len(payload)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(body))
	binary.LittleEndian.PutUint64(hdr[4:12], lsn)
	buf = append(buf, hdr[:]...)
	buf = append(buf, typ)
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[len(buf)-body:], castagnoli)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return append(buf, tr[:]...)
}

// decodeWALRecord parses the record at the start of b for a store with the
// given page size. It returns the record and the number of bytes consumed.
// Errors distinguish a short/torn record (io.ErrUnexpectedEOF) from a
// checksum or structural failure (ErrWALCorrupt).
func decodeWALRecord(b []byte, pageSize int) (walRecord, error) {
	var r walRecord
	if len(b) < 4 {
		return r, io.ErrUnexpectedEOF
	}
	body := int(binary.LittleEndian.Uint32(b[0:4]))
	if body < recBodyMin || body > 9+4+pageSize {
		return r, fmt.Errorf("%w: record body length %d", ErrWALCorrupt, body)
	}
	total := 4 + body + 4
	if len(b) < total {
		return r, io.ErrUnexpectedEOF
	}
	// The frame is plausible from here on: even if validation below fails,
	// r.encoded lets the recovery scan distinguish a corrupt record with
	// valid records after it (mid-log damage) from a torn tail.
	r.encoded = total
	want := binary.LittleEndian.Uint32(b[4+body:])
	if got := crc32.Checksum(b[4:4+body], castagnoli); got != want {
		return r, fmt.Errorf("%w: record checksum %08x, want %08x", ErrWALCorrupt, got, want)
	}
	r.lsn = binary.LittleEndian.Uint64(b[4:12])
	r.typ = b[12]
	payload := b[13 : 4+body]
	switch r.typ {
	case recAlloc, recFree:
		if len(payload) != 4 {
			return r, fmt.Errorf("%w: alloc/free payload %d bytes", ErrWALCorrupt, len(payload))
		}
		r.page = PageID(binary.LittleEndian.Uint32(payload))
		if r.page == 0 {
			return r, fmt.Errorf("%w: record for page 0", ErrWALCorrupt)
		}
	case recWrite:
		if len(payload) != 4+pageSize {
			return r, fmt.Errorf("%w: write payload %d bytes, want %d", ErrWALCorrupt, len(payload), 4+pageSize)
		}
		r.page = PageID(binary.LittleEndian.Uint32(payload))
		if r.page == 0 {
			return r, fmt.Errorf("%w: record for page 0", ErrWALCorrupt)
		}
		r.data = payload[4:]
	case recCommit:
		if len(payload) != 12 {
			return r, fmt.Errorf("%w: commit payload %d bytes", ErrWALCorrupt, len(payload))
		}
		r.seq = binary.LittleEndian.Uint64(payload[0:8])
		r.count = int(binary.LittleEndian.Uint32(payload[8:12]))
	default:
		return r, fmt.Errorf("%w: record type %d", ErrWALCorrupt, r.typ)
	}
	return r, nil
}

// WALConfig configures a WALStore. The zero value checkpoints only on
// demand and syncs the log inside every commit.
type WALConfig struct {
	// AutoCheckpointBytes runs a checkpoint after any commit that leaves
	// the log at or beyond this size, keeping the log bounded. Zero
	// disables automatic checkpoints.
	AutoCheckpointBytes int64

	// GroupCommit coalesces concurrent commits onto shared log syncs: a
	// committer appends its records and applies its batch under the store
	// latch, then waits — latch released — until a sync covers its commit
	// record. The first waiter of a round leads it (see groupSyncer), so N
	// concurrent writers pay roughly one sync per round instead of one
	// each, while every Commit still returns only after its own batch is
	// durable. Off, commits keep the strict append-sync-apply sequence.
	GroupCommit bool
	// CommitLinger is how long a group-commit leader waits for more
	// committers to join its sync round before issuing the sync. A leader
	// lingers only when other committers are already waiting — a lone
	// committer syncs immediately — so the knob trades tail latency for
	// batching under load and costs nothing when idle. Ignored without
	// GroupCommit.
	CommitLinger time.Duration
	// MaxCommitQueue cuts a leader's linger short once this many commits
	// are waiting on the next sync (0 selects 64). Ignored without
	// GroupCommit.
	MaxCommitQueue int
}

// walBatch is the staged state of one open batch.
type walBatch struct {
	depth      int
	aborted    bool
	allocs     []PageID // base allocations, in order
	allocSet   map[PageID]struct{}
	writes     map[PageID][]byte
	writeOrder []PageID // first-write order, for stable logging
	frees      []PageID
	freeSet    map[PageID]struct{}
}

// WALStore wraps a base Store with a write-ahead log providing atomic
// multi-page batches (Begin/Write/Commit), crash recovery (OpenWALStore),
// and log-bounding checkpoints. It implements Store: operations outside an
// explicit batch run as batches of one. Reads see committed state (plus
// the open batch's own staged writes); uncommitted writes are never
// visible to the base store.
//
// Batches are a single-writer protocol: Begin/Commit/Rollback pairs must
// come from one goroutine at a time. Individual operations are safe for
// concurrent use. Concurrent readers that must not observe the open
// batch's staged state read through Snapshot(), which serves only
// committed, checkpointed-or-replayed pages (see WALSnapshot).
type WALStore struct {
	mu       sync.Mutex
	base     Store
	log      LogFile
	cfg      WALConfig
	pageSize int
	metaPage PageID

	nextLSN    uint64
	appliedLSN uint64
	seq        uint64 // last committed batch sequence number
	logSize    int64

	table map[PageID][]byte // committed page images not yet checkpointed
	batch *walBatch
	gc    *groupSyncer // non-nil iff WALConfig.GroupCommit
	stats counters
	fail  error // poisoned: volatile state diverged from the log
	done  bool  // closed
}

// OpenWALStore opens a write-ahead-logged store over base and log. An
// empty log initializes a fresh WAL (reserving one base page for the
// watermark); a non-empty log is verified, its torn tail truncated, and
// every committed batch beyond the watermark replayed. The base must be
// the same store (or a reopening of it) the log was written against.
func OpenWALStore(base Store, log LogFile, cfg WALConfig) (*WALStore, error) {
	if base.PageSize() < walMetaLen {
		return nil, fmt.Errorf("pager: page size %d too small for wal meta", base.PageSize())
	}
	size, err := log.Size()
	if err != nil {
		return nil, fmt.Errorf("pager: wal open: %w", err)
	}
	w := &WALStore{
		base:     base,
		log:      log,
		cfg:      cfg,
		pageSize: base.PageSize(),
		nextLSN:  1,
		table:    make(map[PageID][]byte),
	}
	if size > 0 && size < walHeaderLen {
		// A crash tore the very first header append: nothing was ever
		// logged, so starting fresh loses nothing.
		if err := log.Truncate(0); err != nil {
			return nil, fmt.Errorf("pager: wal open: %w", err)
		}
		size = 0
	}
	if size == 0 {
		if err := w.initialize(); err != nil {
			return nil, err
		}
	} else if err := w.recover(size); err != nil {
		return nil, err
	}
	if cfg.GroupCommit {
		// Everything in the log (and everything replayed) is already
		// durable, so the syncer starts with no sync debt.
		w.gc = newGroupSyncer(log, cfg.CommitLinger, cfg.MaxCommitQueue, w.nextLSN-1)
	}
	return w, nil
}

// initialize sets up a fresh WAL: meta page first (durable in the base),
// then the log header.
func (w *WALStore) initialize() error {
	p, err := w.base.Allocate()
	if err != nil {
		return fmt.Errorf("pager: wal init: %w", err)
	}
	w.metaPage = p.ID
	if err := w.writeMetaPage(); err != nil {
		return err
	}
	if err := w.baseSync(); err != nil {
		return fmt.Errorf("pager: wal init: %w", err)
	}
	hdr := make([]byte, walHeaderLen)
	copy(hdr[0:8], walMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], walVer)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(w.pageSize))
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(w.metaPage))
	binary.LittleEndian.PutUint32(hdr[20:24], crc32.Checksum(hdr[:20], castagnoli))
	if err := w.log.Append(hdr); err != nil {
		return fmt.Errorf("pager: wal init: %w", err)
	}
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("pager: wal init: %w", err)
	}
	w.logSize = walHeaderLen
	return nil
}

// writeMetaPage stores the watermark (applied LSN + sequence) in the
// reserved base page.
func (w *WALStore) writeMetaPage() error {
	data := make([]byte, w.pageSize)
	copy(data[0:8], walMetaMagic)
	binary.LittleEndian.PutUint32(data[8:12], walVer)
	binary.LittleEndian.PutUint64(data[12:20], w.appliedLSN)
	binary.LittleEndian.PutUint64(data[20:28], w.seq)
	binary.LittleEndian.PutUint32(data[28:32], crc32.Checksum(data[:28], castagnoli))
	if err := w.base.Write(&Page{ID: w.metaPage, Data: data}); err != nil {
		return fmt.Errorf("pager: wal meta: %w", err)
	}
	return nil
}

// baseSync flushes the base store if it has a durability point.
func (w *WALStore) baseSync() error {
	if s, ok := w.base.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// recover rebuilds the store from a non-empty log: verify header, read
// watermark, scan + truncate torn tail, replay committed batches.
func (w *WALStore) recover(size int64) error {
	hdr := make([]byte, walHeaderLen)
	if _, err := io.ReadFull(io.NewSectionReader(w.log, 0, walHeaderLen), hdr); err != nil {
		return fmt.Errorf("%w: short header: %v", ErrWALCorrupt, err)
	}
	if string(hdr[0:8]) != walMagic {
		return fmt.Errorf("%w: bad magic %q", ErrWALCorrupt, hdr[0:8])
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != crc32.Checksum(hdr[:20], castagnoli) {
		return fmt.Errorf("%w: header checksum", ErrWALCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != walVer {
		return fmt.Errorf("%w: unsupported version %d", ErrWALCorrupt, v)
	}
	if ps := int(binary.LittleEndian.Uint32(hdr[12:16])); ps != w.pageSize {
		return fmt.Errorf("%w: log page size %d, store %d", ErrWALCorrupt, ps, w.pageSize)
	}
	w.metaPage = PageID(binary.LittleEndian.Uint32(hdr[16:20]))
	if w.metaPage == 0 {
		return fmt.Errorf("%w: meta page id 0", ErrWALCorrupt)
	}

	// The watermark. A corrupt or unreadable meta page (a crash can tear
	// its write mid-checkpoint) degrades to replay-from-zero, which the
	// forcing replay semantics make safe; the next checkpoint rewrites it.
	degraded := true
	if mp, err := w.base.Read(w.metaPage); err == nil {
		d := mp.Data
		if len(d) >= walMetaLen && string(d[0:8]) == walMetaMagic &&
			binary.LittleEndian.Uint32(d[28:32]) == crc32.Checksum(d[:28], castagnoli) {
			w.appliedLSN = binary.LittleEndian.Uint64(d[12:20])
			w.seq = binary.LittleEndian.Uint64(d[20:28])
			degraded = false
		}
	}

	// Scan: read the whole log, validate records, find the last committed
	// boundary.
	buf := make([]byte, size-walHeaderLen)
	if _, err := io.ReadFull(io.NewSectionReader(w.log, walHeaderLen, size-walHeaderLen), buf); err != nil {
		return fmt.Errorf("%w: short log read: %v", ErrWALCorrupt, err)
	}
	type batch struct {
		recs      []walRecord
		commitLSN uint64
		seq       uint64
	}
	var batches []batch
	var pending []walRecord
	lastGood := int64(walHeaderLen) // end offset of the last committed batch
	off := 0
	var expectLSN uint64
	for off < len(buf) {
		rec, err := decodeWALRecord(buf[off:], w.pageSize)
		if err != nil {
			// A record that fails to decode is either the torn tail of a
			// crashed append — everything after it is garbage — or
			// corruption in the middle of the log. Distinguish them by
			// searching the remainder for a record that still decodes at
			// an LSN the sequence could reach: appends are sequential, so
			// valid data past the failure means the failure is corruption
			// (a bit flip, possibly in the length field itself), and
			// silently truncating there would drop committed batches. The
			// byte-wise search can in principle mistake record-shaped page
			// content inside a torn write record for a live record; that
			// errs toward refusing recovery, never toward losing data.
			for probe := off + 1; probe < len(buf); probe++ {
				rec2, err2 := decodeWALRecord(buf[probe:], w.pageSize)
				if err2 == nil && rec2.lsn >= expectLSN {
					return fmt.Errorf("%w: record at offset %d invalid mid-log", ErrWALCorrupt, walHeaderLen+off)
				}
			}
			break
		}
		if expectLSN != 0 && rec.lsn != expectLSN {
			return fmt.Errorf("%w: LSN %d at offset %d, want %d", ErrWALCorrupt, rec.lsn, walHeaderLen+off, expectLSN)
		}
		if expectLSN == 0 {
			if !degraded && rec.lsn > w.appliedLSN+1 {
				return fmt.Errorf("%w: log starts at LSN %d past watermark %d", ErrWALCorrupt, rec.lsn, w.appliedLSN)
			}
		}
		expectLSN = rec.lsn + 1
		off += rec.encoded
		if rec.typ == recCommit {
			if rec.count != len(pending) {
				return fmt.Errorf("%w: commit LSN %d counts %d records, found %d", ErrWALCorrupt, rec.lsn, rec.count, len(pending))
			}
			batches = append(batches, batch{recs: pending, commitLSN: rec.lsn, seq: rec.seq})
			pending = nil
			lastGood = walHeaderLen + int64(off)
		} else {
			pending = append(pending, rec)
		}
	}
	if degraded && len(batches) == 0 {
		return fmt.Errorf("%w: watermark unreadable and no committed batch in log", ErrWALCorrupt)
	}
	// Discard the torn/uncommitted tail.
	if lastGood < size {
		if err := w.log.Truncate(lastGood); err != nil {
			return fmt.Errorf("pager: wal recover: %w", err)
		}
		if err := w.log.Sync(); err != nil {
			return fmt.Errorf("pager: wal recover: %w", err)
		}
	}
	w.logSize = lastGood
	w.nextLSN = w.appliedLSN + 1

	// Replay committed batches beyond the watermark.
	adopter, _ := w.base.(Adopter)
	if degraded && adopter != nil {
		// The meta page's own allocation predates every log record (it
		// happens at initialize, before the header is written), so a
		// degraded replay over a fresh base must adopt it explicitly.
		if err := w.replayAdopt(adopter, w.metaPage); err != nil {
			return err
		}
	}
	for _, b := range batches {
		if b.commitLSN > w.nextLSN-1 {
			w.nextLSN = b.commitLSN + 1
		}
		if b.commitLSN <= w.appliedLSN {
			continue // fully applied and synced before the last checkpoint
		}
		for _, rec := range b.recs {
			switch rec.typ {
			case recAlloc:
				if err := w.replayAdopt(adopter, rec.page); err != nil {
					return err
				}
			case recWrite:
				img := make([]byte, len(rec.data))
				copy(img, rec.data)
				w.table[rec.page] = img
			case recFree:
				delete(w.table, rec.page)
				if err := w.replayDisown(adopter, rec.page); err != nil {
					return err
				}
			}
		}
		if b.seq > w.seq {
			w.seq = b.seq
		}
	}
	return nil
}

// replayAdopt forces page id live in the base during recovery.
func (w *WALStore) replayAdopt(a Adopter, id PageID) error {
	if a != nil {
		if err := a.Adopt(id); err != nil {
			return fmt.Errorf("%w: adopt page %d: %v", ErrWALReplay, id, err)
		}
		return nil
	}
	// Fallback for bases without Adopter: re-executing the logged
	// allocation sequence from the watermark state must yield the same
	// ids (MemStore and FileStore allocators are deterministic).
	p, err := w.base.Allocate()
	if err != nil {
		return fmt.Errorf("%w: alloc page %d: %v", ErrWALReplay, id, err)
	}
	if p.ID != id {
		return fmt.Errorf("%w: replay allocated page %d, log says %d", ErrWALReplay, p.ID, id)
	}
	return nil
}

// replayDisown forces page id free in the base during recovery.
func (w *WALStore) replayDisown(a Adopter, id PageID) error {
	if a != nil {
		if err := a.Disown(id); err != nil {
			return fmt.Errorf("%w: disown page %d: %v", ErrWALReplay, id, err)
		}
		return nil
	}
	if err := w.base.Free(id); err != nil && !errors.Is(err, ErrDoubleFree) {
		return fmt.Errorf("%w: free page %d: %v", ErrWALReplay, id, err)
	}
	return nil
}

// MetaPage returns the id of the base page reserved for the WAL watermark.
func (w *WALStore) MetaPage() PageID { return w.metaPage }

// CommittedSeq returns the sequence number of the last committed batch
// (batches are numbered from 1); it survives crash recovery, so callers
// can map a recovered store back to a point in their own history.
func (w *WALStore) CommittedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// AppliedLSN returns the checkpoint watermark: every log record at or
// below it is applied to the base store and durable.
func (w *WALStore) AppliedLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appliedLSN
}

// LogSize returns the current log length in bytes.
func (w *WALStore) LogSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.logSize
}

// PendingPages returns the number of committed page images waiting for the
// next checkpoint.
func (w *WALStore) PendingPages() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.table)
}

func (w *WALStore) ok() error {
	if w.done {
		return ErrStoreClosed
	}
	return w.fail
}

// poison marks the store failed: the in-memory state no longer matches the
// log, so only a reopen (which replays the log) is safe.
func (w *WALStore) poison(cause error) error {
	err := fmt.Errorf("%w: %w", ErrStoreFailed, cause)
	w.fail = err
	return err
}

// Begin implements Batcher: it opens a batch (or joins the open one —
// nested Begin/Commit pairs commit only at the outermost level).
func (w *WALStore) Begin() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ok(); err != nil {
		return err
	}
	if w.batch != nil {
		w.batch.depth++
		return nil
	}
	w.batch = &walBatch{
		depth:    1,
		allocSet: make(map[PageID]struct{}),
		writes:   make(map[PageID][]byte),
		freeSet:  make(map[PageID]struct{}),
	}
	return nil
}

// Rollback implements Batcher: it discards the batch's staged writes and
// frees, and returns its base allocations. A nested Rollback poisons the
// enclosing batch (its outermost Commit fails with ErrBatchAborted).
func (w *WALStore) Rollback() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.batch == nil {
		return ErrNoBatch
	}
	w.batch.aborted = true
	w.batch.depth--
	if w.batch.depth > 0 {
		return nil
	}
	return w.rollbackLocked()
}

// rollbackLocked physically undoes the open batch (caller holds mu).
func (w *WALStore) rollbackLocked() error {
	b := w.batch
	w.batch = nil
	return w.rollbackBatchLocked(b)
}

// rollbackBatchLocked returns a detached batch's base allocations (caller
// holds mu). Reverse order restores the base free list exactly, keeping
// the allocator's future id sequence identical to a run in which this
// batch never existed (which is how the log will read).
func (w *WALStore) rollbackBatchLocked(b *walBatch) error {
	for i := len(b.allocs) - 1; i >= 0; i-- {
		if err := w.base.Free(b.allocs[i]); err != nil {
			return w.poison(fmt.Errorf("rollback free page %d: %w", b.allocs[i], err))
		}
	}
	return nil
}

// Commit implements Batcher: the outermost Commit appends the batch's
// records and a commit record to the log, syncs it, and then applies the
// batch — page images into the committed table, frees into the base
// allocator. The batch is durable once Commit returns. Under GroupCommit
// the sync is the shared group sync: the batch is applied under the
// latch, then Commit waits — latch released — for a sync that covers its
// commit record; the durable-on-return guarantee is identical. An
// automatic checkpoint may follow (WALConfig); its error is returned
// even though the commit itself succeeded.
func (w *WALStore) Commit() error {
	w.mu.Lock()
	//mobidxlint:allow lockorder -- by design: the commit record must be appended (and, without group commit, synced) under the latch to keep the log in LSN order; group commit moves the sync wait below the Unlock
	lsn, wait, err := w.commitLocked()
	w.mu.Unlock()
	if err != nil || !wait {
		return err
	}
	if err := w.waitDurable(lsn); err != nil {
		return err
	}
	return w.maybeAutoCheckpoint()
}

// commitLocked resolves the implicit batch protocol (nesting, aborts)
// and commits the outermost batch. wait is true when the caller must
// still wait on the group syncer for durability.
func (w *WALStore) commitLocked() (lsn uint64, wait bool, err error) {
	if w.batch == nil {
		return 0, false, ErrNoBatch
	}
	if w.batch.depth > 1 {
		w.batch.depth--
		return 0, false, nil
	}
	if w.batch.aborted {
		if err := w.rollbackLocked(); err != nil {
			return 0, false, err
		}
		return 0, false, ErrBatchAborted
	}
	if err := w.ok(); err != nil {
		return 0, false, err
	}
	b := w.batch
	w.batch = nil
	return w.commitBatchLocked(b)
}

// commitBatchLocked appends a detached batch's records and commit record
// to the log, syncs (inline without the group syncer, deferred to the
// shared group sync with it), and applies the batch to the volatile
// state. The batch must already be detached from whatever handle staged
// it (w.batch or a Txn).
func (w *WALStore) commitBatchLocked(b *walBatch) (lsn uint64, wait bool, err error) {
	if len(b.allocs) == 0 && len(b.writes) == 0 && len(b.frees) == 0 {
		return 0, false, nil
	}

	// Append the records: allocations first (in allocation order — replay
	// re-executes them against the base allocator), then final page
	// images, then frees. Writes to pages freed later in the same batch
	// are dead and not logged.
	startLSN := w.nextLSN
	startSize := w.logSize
	var buf []byte
	count := 0
	emit := func(typ byte, payload []byte) {
		buf = appendWALRecord(buf[:0], w.nextLSN, typ, payload)
		w.nextLSN++
		count++
	}
	var idb [4]byte
	appendErr := func() error {
		for _, id := range b.allocs {
			binary.LittleEndian.PutUint32(idb[:], uint32(id))
			emit(recAlloc, idb[:])
			if err := w.log.Append(buf); err != nil {
				return err
			}
		}
		for _, id := range b.writeOrder {
			if _, dead := b.freeSet[id]; dead {
				continue
			}
			payload := make([]byte, 4+w.pageSize)
			binary.LittleEndian.PutUint32(payload[0:4], uint32(id))
			copy(payload[4:], b.writes[id])
			emit(recWrite, payload)
			if err := w.log.Append(buf); err != nil {
				return err
			}
		}
		for _, id := range b.frees {
			binary.LittleEndian.PutUint32(idb[:], uint32(id))
			emit(recFree, idb[:])
			if err := w.log.Append(buf); err != nil {
				return err
			}
		}
		var cp [12]byte
		binary.LittleEndian.PutUint64(cp[0:8], w.seq+1)
		binary.LittleEndian.PutUint32(cp[8:12], uint32(count))
		buf = appendWALRecord(buf[:0], w.nextLSN, recCommit, cp[:])
		w.nextLSN++
		if err := w.log.Append(buf); err != nil {
			return err
		}
		w.logSize = startSize // recomputed below on success
		if w.gc != nil {
			return nil // durability deferred to the group sync
		}
		return w.log.Sync()
	}()
	if appendErr != nil {
		// The log tail now holds a half-written batch; cut it back so the
		// next commit appends onto a clean boundary, then undo the batch.
		w.nextLSN = startLSN
		if terr := w.log.Truncate(startSize); terr != nil {
			return 0, false, w.poison(fmt.Errorf("commit append: %w; truncate: %w", appendErr, terr))
		}
		if rerr := w.rollbackBatchLocked(b); rerr != nil {
			return 0, false, errors.Join(fmt.Errorf("pager: wal commit: %w", appendErr), rerr)
		}
		return 0, false, fmt.Errorf("pager: wal commit: %w", appendErr)
	}
	commitLSN := w.nextLSN - 1
	// Recompute the log size: records were appended one by one.
	sz, err := w.log.Size()
	if err == nil {
		w.logSize = sz
	} else {
		w.logSize = startSize // unknown; next checkpoint fixes it
	}

	// The batch is durable (or, under group commit, fully logged with its
	// sync pending); apply it to the volatile state. The log is now the
	// source of truth — an apply failure poisons the store. Applying
	// before the group sync is safe because Commit does not return until
	// the sync covers this batch: no caller can act on the new state
	// before it is durable, and reads served meanwhile show state that is
	// at worst about to become durable.
	for _, id := range b.writeOrder {
		if _, dead := b.freeSet[id]; dead {
			continue
		}
		w.table[id] = b.writes[id]
	}
	for _, id := range b.frees {
		delete(w.table, id)
		if err := w.base.Free(id); err != nil {
			return 0, false, w.poison(fmt.Errorf("commit apply free page %d: %w", id, err))
		}
	}
	w.seq++

	if w.gc != nil {
		w.gc.noteAppend(commitLSN)
		return commitLSN, true, nil
	}
	if w.cfg.AutoCheckpointBytes > 0 && w.logSize >= w.cfg.AutoCheckpointBytes {
		if err := w.checkpointLocked(); err != nil {
			return 0, false, fmt.Errorf("pager: commit durable; auto-checkpoint: %w", err)
		}
	}
	return commitLSN, false, nil
}

// waitDurable blocks on the group syncer until lsn is covered by a
// completed sync. A sync failure leaves durability unknown, so it
// poisons the store like any other post-append failure.
func (w *WALStore) waitDurable(lsn uint64) error {
	if err := w.gc.waitDurable(lsn); err != nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		if w.fail != nil {
			return w.fail
		}
		return w.poison(err)
	}
	return nil
}

// maybeAutoCheckpoint runs the configured auto-checkpoint after a group
// commit's durability wait (without group commit the checkpoint runs
// inline in commitBatchLocked). A concurrently opened batch skips it —
// that batch's own commit will retry.
func (w *WALStore) maybeAutoCheckpoint() error {
	if w.cfg.AutoCheckpointBytes <= 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done || w.fail != nil || w.batch != nil || w.logSize < w.cfg.AutoCheckpointBytes {
		return nil
	}
	//mobidxlint:allow lockorder -- by design: a checkpoint must hold the latch across base-sync + truncate so no commit interleaves between the two
	if err := w.checkpointLocked(); err != nil {
		return fmt.Errorf("pager: commit durable; auto-checkpoint: %w", err)
	}
	return nil
}

// Checkpoint applies every committed page image to the base store, makes
// the base durable, advances the watermark, and truncates the log to its
// header. It fails with ErrBatchOpen while a batch is open. Checkpoint is
// idempotent and safe to retry after an error.
func (w *WALStore) Checkpoint() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.ok(); err != nil {
		return err
	}
	if w.batch != nil {
		return fmt.Errorf("%w: checkpoint requires a quiescent store", ErrBatchOpen)
	}
	//mobidxlint:allow lockorder -- by design: a checkpoint must hold the latch across base-sync + truncate so no commit interleaves between the two
	return w.checkpointLocked()
}

func (w *WALStore) checkpointLocked() error {
	if len(w.table) == 0 && w.logSize <= walHeaderLen && w.appliedLSN == w.nextLSN-1 {
		return nil
	}
	// 1. Apply committed images to the base.
	for id, img := range w.table {
		if err := w.base.Write(&Page{ID: id, Data: img}); err != nil {
			return fmt.Errorf("pager: checkpoint page %d: %w", id, err)
		}
	}
	// 2. Base durable: data pages AND the base's own allocator state.
	if err := w.baseSync(); err != nil {
		return fmt.Errorf("pager: checkpoint sync: %w", err)
	}
	// 3. Advance the watermark — only now, so the durable allocator is
	// never behind it — and make it durable.
	w.appliedLSN = w.nextLSN - 1
	if err := w.writeMetaPage(); err != nil {
		return err
	}
	if err := w.baseSync(); err != nil {
		return fmt.Errorf("pager: checkpoint meta sync: %w", err)
	}
	// 4. Everything in the log is applied and durable; drop it. The table
	// is clear even if truncation fails — the watermark covers the stale
	// records and recovery will skip them.
	w.table = make(map[PageID][]byte)
	if err := w.log.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("pager: checkpoint truncate: %w", err)
	}
	if err := w.log.Sync(); err != nil {
		return fmt.Errorf("pager: checkpoint truncate sync: %w", err)
	}
	w.logSize = walHeaderLen
	if w.gc != nil {
		// Everything at or below the watermark is durable in the base:
		// waiters whose commit record the truncation just discarded are
		// covered and must not wait for (or lead) another log sync.
		w.gc.noteDurable(w.appliedLSN)
	}
	return nil
}

// Close checkpoints and closes the log (the base store remains the
// caller's to close). An open batch is rolled back first.
func (w *WALStore) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.done {
		return nil
	}
	var errs []error
	if w.batch != nil {
		w.batch.depth = 1
		if err := w.rollbackLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	if w.fail == nil {
		//mobidxlint:allow lockorder -- by design: the close checkpoint holds the latch across base-sync + truncate; the store is shutting down, nothing else can make progress anyway
		if err := w.checkpointLocked(); err != nil {
			errs = append(errs, err)
		}
	}
	w.done = true
	if w.gc != nil {
		// Wake any remaining waiters: commits the close checkpoint made
		// durable return nil; anything else fails with ErrStoreClosed.
		w.gc.shutdown(ErrStoreClosed)
	}
	if err := w.log.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// PageSize implements Store.
func (w *WALStore) PageSize() int { return w.pageSize }

// Stats implements Store, reporting logical traffic: reads however served
// (batch, table, or base) and writes/allocs/frees as staged. Physical base
// traffic (deferred to checkpoints) is available from the base store.
// Lock-free: counters are atomic, so measuring never blocks operations.
func (w *WALStore) Stats() Stats { return w.stats.snapshot() }

// PagesInUse implements Store: live pages excluding the reserved WAL-meta
// page and pages the open batch has staged to free.
func (w *WALStore) PagesInUse() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.base.PagesInUse() - 1
	if w.batch != nil {
		n -= len(w.batch.frees)
	}
	return n
}

// Allocate implements Store. Inside a batch the base allocation happens
// immediately (ids must be stable) but is undone by Rollback; outside a
// batch it commits as a batch of one.
func (w *WALStore) Allocate() (*Page, error) {
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	if w.batch != nil {
		p, err := w.allocateLocked()
		w.mu.Unlock()
		return p, err
	}
	w.mu.Unlock()
	var p *Page
	err := RunBatch(w, func() error {
		w.mu.Lock()
		defer w.mu.Unlock()
		var e error
		p, e = w.allocateLocked()
		return e
	})
	return p, err
}

func (w *WALStore) allocateLocked() (*Page, error) {
	p, err := w.base.Allocate()
	if err != nil {
		return nil, err
	}
	b := w.batch
	b.allocs = append(b.allocs, p.ID)
	b.allocSet[p.ID] = struct{}{}
	w.stats.allocs.Add(1)
	return p, nil
}

// Read implements Store: the open batch's staged image, else the committed
// table, else the base store.
func (w *WALStore) Read(id PageID) (*Page, error) {
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	if id == w.metaPage {
		w.mu.Unlock()
		return nil, fmt.Errorf("pager: read wal meta page %d: %w", id, ErrReservedPage)
	}
	if w.batch != nil {
		if _, freed := w.batch.freeSet[id]; freed {
			w.mu.Unlock()
			return nil, fmt.Errorf("%w: page %d freed in open batch", ErrPageNotFound, id)
		}
		if img, ok := w.batch.writes[id]; ok {
			data := make([]byte, len(img))
			copy(data, img)
			w.stats.reads.Add(1)
			w.mu.Unlock()
			return &Page{ID: id, Data: data}, nil
		}
	}
	if img, ok := w.table[id]; ok {
		data := make([]byte, len(img))
		copy(data, img)
		w.stats.reads.Add(1)
		w.mu.Unlock()
		return &Page{ID: id, Data: data}, nil
	}
	w.stats.reads.Add(1)
	w.mu.Unlock()
	return w.base.Read(id)
}

// WALSnapshot is a read-only view of a WALStore that provides the
// read-snapshot guarantee for concurrent query serving: its reads see only
// committed state — the committed page table (pages whose batch has
// committed but not yet checkpointed) or the base store (checkpointed or
// replayed pages) — never the staged writes, allocations, or frees of a
// batch that is still open. A batch's mutations become visible to the
// snapshot atomically when Commit applies them (commit application runs
// entirely under the store's latch).
//
// The view is live, not frozen: it always reflects the latest committed
// state. Readers holding a WALSnapshot can therefore run concurrently
// with a writer goroutine that is staging a batch, and each read observes
// either the pre-batch or the post-commit image of a page, never a
// mixture and never uncommitted bytes.
type WALSnapshot struct {
	w *WALStore
}

// Snapshot returns the committed-reads view of the store. The returned
// view is valid for the lifetime of the store and is safe for concurrent
// use by any number of readers.
func (w *WALStore) Snapshot() *WALSnapshot { return &WALSnapshot{w: w} }

// PageSize returns the store's page size.
func (s *WALSnapshot) PageSize() int { return s.w.pageSize }

// Read fetches the committed image of the page: the committed table if the
// page has a not-yet-checkpointed image, else the base store. Pages that
// exist only as uncommitted staged allocations are not found; pages staged
// to be freed in an open batch are still served (the free has not
// committed).
func (s *WALSnapshot) Read(id PageID) (*Page, error) {
	w := s.w
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return nil, err
	}
	if id == w.metaPage {
		w.mu.Unlock()
		return nil, fmt.Errorf("pager: read wal meta page %d: %w", id, ErrReservedPage)
	}
	if img, ok := w.table[id]; ok {
		data := make([]byte, len(img))
		copy(data, img)
		w.mu.Unlock()
		w.stats.reads.Add(1)
		return &Page{ID: id, Data: data}, nil
	}
	w.mu.Unlock()
	w.stats.reads.Add(1)
	return w.base.Read(id)
}

// Write implements Store: inside a batch the image is staged (visible to
// the batch's own reads, invisible to everyone else until Commit);
// outside a batch it commits as a batch of one.
func (w *WALStore) Write(p *Page) error {
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.batch != nil {
		err := w.writeLocked(p)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return RunBatch(w, func() error {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.writeLocked(p)
	})
}

func (w *WALStore) writeLocked(p *Page) error {
	if len(p.Data) != w.pageSize {
		return fmt.Errorf("pager: wal write page %d: %d bytes, want %d", p.ID, len(p.Data), w.pageSize)
	}
	if p.ID == w.metaPage || p.ID == 0 {
		return fmt.Errorf("pager: write wal meta page %d: %w", p.ID, ErrReservedPage)
	}
	b := w.batch
	if _, freed := b.freeSet[p.ID]; freed {
		return fmt.Errorf("%w: page %d freed in open batch", ErrPageNotFound, p.ID)
	}
	if _, seen := b.writes[p.ID]; !seen {
		b.writeOrder = append(b.writeOrder, p.ID)
	}
	img := make([]byte, w.pageSize)
	copy(img, p.Data)
	b.writes[p.ID] = img
	w.stats.writes.Add(1)
	return nil
}

// Free implements Store: staged until Commit. Freeing a page twice in one
// batch fails with ErrDoubleFree; freeing the WAL-meta page with
// ErrReservedPage.
func (w *WALStore) Free(id PageID) error {
	w.mu.Lock()
	if err := w.ok(); err != nil {
		w.mu.Unlock()
		return err
	}
	if w.batch != nil {
		err := w.freeLocked(id)
		w.mu.Unlock()
		return err
	}
	w.mu.Unlock()
	return RunBatch(w, func() error {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.freeLocked(id)
	})
}

func (w *WALStore) freeLocked(id PageID) error {
	if id == w.metaPage || id == 0 {
		return fmt.Errorf("pager: free wal meta page %d: %w", id, ErrReservedPage)
	}
	b := w.batch
	if _, dup := b.freeSet[id]; dup {
		return fmt.Errorf("pager: free page %d: %w", id, ErrDoubleFree)
	}
	// Validate liveness now: once logged, a free MUST apply, so a bad id
	// must be rejected before it can reach the log.
	_, inBatch := b.allocSet[id]
	_, inWrites := b.writes[id]
	_, inTable := w.table[id]
	if !inBatch && !inWrites && !inTable {
		if _, err := w.base.Read(id); err != nil {
			return fmt.Errorf("pager: free page %d: %w", id, err)
		}
	}
	b.freeSet[id] = struct{}{}
	b.frees = append(b.frees, id)
	w.stats.frees.Add(1)
	return nil
}
