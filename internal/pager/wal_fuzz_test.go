package pager

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

const fuzzWALPageSize = 64

// walSeedRecords builds one valid encoded record of every type at the fuzz
// page size.
func walSeedRecords() [][]byte {
	var id4 [4]byte
	binary.LittleEndian.PutUint32(id4[:], 7)
	img := make([]byte, 4+fuzzWALPageSize)
	binary.LittleEndian.PutUint32(img[0:4], 3)
	for i := 4; i < len(img); i++ {
		img[i] = byte(i * 11)
	}
	var cp [12]byte
	binary.LittleEndian.PutUint64(cp[0:8], 5)
	binary.LittleEndian.PutUint32(cp[8:12], 2)
	return [][]byte{
		appendWALRecord(nil, 1, recAlloc, id4[:]),
		appendWALRecord(nil, 2, recWrite, img),
		appendWALRecord(nil, 3, recFree, id4[:]),
		appendWALRecord(nil, 4, recCommit, cp[:]),
	}
}

// FuzzDecodeWALRecord feeds arbitrary bytes to the WAL record decoder. The
// decoder must never panic; every rejection must be the torn-tail signal
// or the typed corruption error; and every accepted record must round-trip
// — re-encoding it reproduces the exact bytes consumed — with structurally
// valid fields, so recovery can never replay garbage.
func FuzzDecodeWALRecord(f *testing.F) {
	for _, rec := range walSeedRecords() {
		f.Add(rec)
		for _, mut := range []func([]byte){
			func(b []byte) { b[0] ^= 0x40 },        // length field
			func(b []byte) { b[len(b)-1] ^= 1 },    // checksum trailer
			func(b []byte) { b[12] = 0x7F },        // record type
			func(b []byte) { b[len(b)/2] ^= 0x80 }, // mid-body
			func(b []byte) { b[4] ^= 0xFF },        // LSN
		} {
			cp := append([]byte(nil), rec...)
			mut(cp)
			f.Add(cp)
		}
		f.Add(rec[:len(rec)-3]) // torn tail
		f.Add(rec[:5])
		// Two records back to back: decode must consume exactly the first.
		f.Add(append(append([]byte(nil), rec...), rec...))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeWALRecord(data, fuzzWALPageSize)
		if err != nil {
			if !errors.Is(err, ErrWALCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("decode error outside the WAL taxonomy: %v", err)
			}
			return
		}
		if rec.encoded <= 0 || rec.encoded > len(data) {
			t.Fatalf("accepted record consumed %d of %d bytes", rec.encoded, len(data))
		}
		var payload []byte
		switch rec.typ {
		case recAlloc, recFree:
			if rec.page == 0 {
				t.Fatal("accepted alloc/free of page 0")
			}
			payload = binary.LittleEndian.AppendUint32(nil, uint32(rec.page))
		case recWrite:
			if rec.page == 0 {
				t.Fatal("accepted write of page 0")
			}
			if len(rec.data) != fuzzWALPageSize {
				t.Fatalf("accepted write with %d-byte image, page size %d", len(rec.data), fuzzWALPageSize)
			}
			payload = binary.LittleEndian.AppendUint32(nil, uint32(rec.page))
			payload = append(payload, rec.data...)
		case recCommit:
			if rec.count < 0 {
				t.Fatalf("accepted commit with count %d", rec.count)
			}
			payload = binary.LittleEndian.AppendUint64(nil, rec.seq)
			payload = binary.LittleEndian.AppendUint32(payload, uint32(rec.count))
		default:
			t.Fatalf("accepted unknown record type %d", rec.typ)
		}
		re := appendWALRecord(nil, rec.lsn, rec.typ, payload)
		if !bytes.Equal(re, data[:rec.encoded]) {
			t.Fatalf("round-trip mismatch:\n in %x\nout %x", data[:rec.encoded], re)
		}
	})
}
