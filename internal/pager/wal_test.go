package pager

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

const walTestPageSize = 256

// walPattern fills a page with a recognizable, id-dependent pattern.
func walPattern(size int, tag byte) []byte {
	b := make([]byte, size)
	for i := range b {
		b[i] = tag ^ byte(i)
	}
	return b
}

func openTestWAL(t *testing.T, base Store, log LogFile, cfg WALConfig) *WALStore {
	t.Helper()
	w, err := OpenWALStore(base, log, cfg)
	if err != nil {
		t.Fatalf("OpenWALStore: %v", err)
	}
	return w
}

func TestWALBatchVisibilityAndRollback(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{})

	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	img := walPattern(walTestPageSize, 0xAB)
	if err := w.Write(&Page{ID: p.ID, Data: img}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// The batch's own reads see the staged image.
	got, err := w.Read(p.ID)
	if err != nil {
		t.Fatalf("Read staged: %v", err)
	}
	if !bytes.Equal(got.Data, img) {
		t.Fatalf("staged read returned wrong image")
	}
	// The base store must not: the page exists (ids are assigned eagerly)
	// but holds no data.
	bp, err := base.Read(p.ID)
	if err != nil {
		t.Fatalf("base read: %v", err)
	}
	if bytes.Equal(bp.Data, img) {
		t.Fatalf("uncommitted write leaked into the base store")
	}

	before := base.PagesInUse()
	if err := w.Rollback(); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if base.PagesInUse() != before-1 {
		t.Fatalf("rollback kept the allocation: %d pages, want %d", base.PagesInUse(), before-1)
	}
	if _, err := w.Read(p.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("read after rollback: %v, want ErrPageNotFound", err)
	}
}

func TestWALCommitDurableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	base, err := NewFileStore(filepath.Join(dir, "data"), walTestPageSize)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	log, err := OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	w := openTestWAL(t, base, log, WALConfig{})

	// Two committed batches...
	var ids []PageID
	for batch := 0; batch < 2; batch++ {
		if err := w.Begin(); err != nil {
			t.Fatalf("Begin: %v", err)
		}
		for i := 0; i < 3; i++ {
			p, err := w.Allocate()
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			ids = append(ids, p.ID)
			if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(p.ID))}); err != nil {
				t.Fatalf("Write: %v", err)
			}
		}
		if err := w.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	// ...and one open batch that never commits.
	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	lost, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Write(&Page{ID: lost.ID, Data: walPattern(walTestPageSize, 0xFF)}); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Crash: abandon everything without Close or Checkpoint, reopen from
	// the files. (The base file only ever saw the WAL-meta page; the data
	// lives in the log.)
	if w.CommittedSeq() != 2 {
		t.Fatalf("CommittedSeq = %d, want 2", w.CommittedSeq())
	}
	base2, err := OpenFileStore(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatalf("reopen base: %v", err)
	}
	defer base2.Close()
	log2, err := OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	w2 := openTestWAL(t, base2, log2, WALConfig{})
	defer w2.Close()

	if w2.CommittedSeq() != 2 {
		t.Fatalf("recovered CommittedSeq = %d, want 2", w2.CommittedSeq())
	}
	for _, id := range ids {
		p, err := w2.Read(id)
		if err != nil {
			t.Fatalf("read committed page %d after recovery: %v", id, err)
		}
		if !bytes.Equal(p.Data, walPattern(walTestPageSize, byte(id))) {
			t.Fatalf("committed page %d corrupted by recovery", id)
		}
	}
	if _, err := w2.Read(lost.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("uncommitted page %d visible after recovery: %v", lost.ID, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	log := NewMemLog()
	w := openTestWAL(t, base, log, WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	img := walPattern(walTestPageSize, 0x5A)
	if err := w.Write(&Page{ID: p.ID, Data: img}); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// A crash mid-append leaves a torn record: half a valid record's
	// bytes. Recovery must truncate it, keeping the committed batch.
	valid := appendWALRecord(nil, 99, recAlloc, []byte{9, 0, 0, 0})
	if err := log.Append(valid[:len(valid)-3]); err != nil {
		t.Fatalf("append torn record: %v", err)
	}
	size, _ := log.Size()

	w2 := openTestWAL(t, base, log, WALConfig{})
	if got, _ := log.Size(); got >= size {
		t.Fatalf("torn tail not truncated: size %d, was %d", got, size)
	}
	rp, err := w2.Read(p.ID)
	if err != nil {
		t.Fatalf("read committed page after torn-tail recovery: %v", err)
	}
	if !bytes.Equal(rp.Data, img) {
		t.Fatalf("committed page corrupted by torn-tail recovery")
	}
}

func TestWALMidLogCorruptionDetected(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	log := NewMemLog()
	w := openTestWAL(t, base, log, WALConfig{})
	for i := 0; i < 3; i++ {
		p, err := w.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(i))}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}

	// Flip one payload bit in the middle of the log (inside the first
	// batch's records, with valid batches after it). Recovery must refuse
	// with a typed error, not silently drop the later batches.
	log.mu.Lock()
	log.buf[walHeaderLen+20] ^= 0x10
	log.mu.Unlock()

	_, err := OpenWALStore(base, log, WALConfig{})
	if !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("mid-log corruption: %v, want ErrWALCorrupt", err)
	}
}

func TestWALCheckpointTruncatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	base, err := NewFileStore(filepath.Join(dir, "data"), walTestPageSize)
	if err != nil {
		t.Fatalf("NewFileStore: %v", err)
	}
	log, err := OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("OpenFileLog: %v", err)
	}
	w := openTestWAL(t, base, log, WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	img := walPattern(walTestPageSize, 0xC3)
	if err := w.Write(&Page{ID: p.ID, Data: img}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if w.PendingPages() == 0 {
		t.Fatalf("no pending pages before checkpoint")
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := w.LogSize(); got != walHeaderLen {
		t.Fatalf("log size after checkpoint = %d, want header %d", got, walHeaderLen)
	}
	if w.PendingPages() != 0 {
		t.Fatalf("pending pages after checkpoint: %d", w.PendingPages())
	}
	// The base store itself now holds the page.
	bp, err := base.Read(p.ID)
	if err != nil {
		t.Fatalf("base read after checkpoint: %v", err)
	}
	if !bytes.Equal(bp.Data, img) {
		t.Fatalf("checkpoint did not apply the page to the base")
	}
	seq := w.CommittedSeq()

	// Crash after checkpoint: reopen, nothing to replay, data intact,
	// sequence number preserved via the WAL-meta page.
	base2, err := OpenFileStore(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatalf("reopen base: %v", err)
	}
	defer base2.Close()
	log2, err := OpenFileLog(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	w2 := openTestWAL(t, base2, log2, WALConfig{})
	defer w2.Close()
	if w2.CommittedSeq() != seq {
		t.Fatalf("CommittedSeq after checkpointed reopen = %d, want %d", w2.CommittedSeq(), seq)
	}
	rp, err := w2.Read(p.ID)
	if err != nil {
		t.Fatalf("read after checkpointed reopen: %v", err)
	}
	if !bytes.Equal(rp.Data, img) {
		t.Fatalf("page corrupted across checkpointed reopen")
	}
}

func TestWALAutoCheckpointBoundsLog(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	limit := int64(4 * walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{AutoCheckpointBytes: limit})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	// Any single commit adds at most one page image plus some record
	// overhead, so the log may overshoot the trigger by one batch before
	// the checkpoint reels it back to the header.
	slack := int64(walTestPageSize + 256)
	for i := 0; i < 100; i++ {
		if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(i))}); err != nil {
			t.Fatalf("Write %d: %v", i, err)
		}
		if got := w.LogSize(); got > limit+slack {
			t.Fatalf("log grew unbounded: %d bytes after write %d (limit %d)", got, i, limit)
		}
	}
	if w.AppliedLSN() == 0 {
		t.Fatalf("auto-checkpoint never ran")
	}
}

func TestWALNestedBatches(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{})

	// Nested commit: only the outermost applies.
	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Begin(); err != nil {
		t.Fatalf("nested Begin: %v", err)
	}
	if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, 1)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("nested Commit: %v", err)
	}
	if w.CommittedSeq() != 0 {
		t.Fatalf("nested commit applied the batch: seq %d", w.CommittedSeq())
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("outer Commit: %v", err)
	}
	if w.CommittedSeq() != 1 {
		t.Fatalf("outer commit seq = %d, want 1", w.CommittedSeq())
	}

	// Nested rollback poisons the whole batch.
	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	q, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Begin(); err != nil {
		t.Fatalf("nested Begin: %v", err)
	}
	if err := w.Rollback(); err != nil {
		t.Fatalf("nested Rollback: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, ErrBatchAborted) {
		t.Fatalf("outer Commit after nested rollback: %v, want ErrBatchAborted", err)
	}
	if _, err := w.Read(q.ID); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("aborted batch's page visible: %v", err)
	}
	if err := w.Commit(); !errors.Is(err, ErrNoBatch) {
		t.Fatalf("Commit with no batch: %v, want ErrNoBatch", err)
	}
}

func TestWALFreeTyping(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Begin(); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	if err := w.Free(p.ID); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := w.Free(p.ID); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("double free in batch: %v, want ErrDoubleFree", err)
	}
	if err := w.Free(w.MetaPage()); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("free of wal meta page: %v, want ErrReservedPage", err)
	}
	if err := w.Free(PageID(999)); err == nil {
		t.Fatalf("free of unknown page succeeded")
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// The free is applied: a second free outside any batch is a double
	// free at the base level and must not reach the log.
	if err := w.Free(p.ID); err == nil {
		t.Fatalf("free of freed page succeeded")
	}

	if _, err := w.Read(w.MetaPage()); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("read of wal meta page: %v, want ErrReservedPage", err)
	}
	if err := w.Write(&Page{ID: w.MetaPage(), Data: make([]byte, walTestPageSize)}); !errors.Is(err, ErrReservedPage) {
		t.Fatalf("write of wal meta page: %v, want ErrReservedPage", err)
	}
}

func TestWALFreeReallocCycleRecovers(t *testing.T) {
	// alloc → free → realloc of the same page id across batches, then
	// crash-reopen: forcing replay must land on the final state.
	base := NewMemStore(walTestPageSize)
	log := NewMemLog()
	w := openTestWAL(t, base, log, WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, 1)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Free(p.ID); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q, err := w.Allocate()
	if err != nil {
		t.Fatalf("realloc: %v", err)
	}
	if q.ID != p.ID {
		t.Fatalf("allocator did not recycle: got %d, want %d", q.ID, p.ID)
	}
	final := walPattern(walTestPageSize, 7)
	if err := w.Write(&Page{ID: q.ID, Data: final}); err != nil {
		t.Fatalf("Write: %v", err)
	}

	// Crash (abandon w), reopen over the same base and log.
	w2 := openTestWAL(t, base, log, WALConfig{})
	got, err := w2.Read(q.ID)
	if err != nil {
		t.Fatalf("read after realloc recovery: %v", err)
	}
	if !bytes.Equal(got.Data, final) {
		t.Fatalf("realloc recovery returned stale image")
	}
}

func TestWALDegradedMetaRecovery(t *testing.T) {
	// The base store is lost entirely (fresh MemStore), only the log
	// survives: the WAL-meta page is unreadable, so recovery degrades to
	// a full replay from LSN zero — and still reconstructs everything.
	base := NewMemStore(walTestPageSize)
	log := NewMemLog()
	w := openTestWAL(t, base, log, WALConfig{})
	var ids []PageID
	for i := 0; i < 3; i++ {
		p, err := w.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		ids = append(ids, p.ID)
		if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, byte(10+i))}); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}

	fresh := NewMemStore(walTestPageSize)
	w2 := openTestWAL(t, fresh, log, WALConfig{})
	for i, id := range ids {
		p, err := w2.Read(id)
		if err != nil {
			t.Fatalf("degraded recovery read %d: %v", id, err)
		}
		if !bytes.Equal(p.Data, walPattern(walTestPageSize, byte(10+i))) {
			t.Fatalf("degraded recovery corrupted page %d", id)
		}
	}

	// A log with no committed batch AND no watermark is unrecoverable —
	// typed, not silent.
	log2 := NewMemLog()
	s := NewMemStore(walTestPageSize)
	w3 := openTestWAL(t, s, log2, WALConfig{})
	_ = w3
	if _, err := OpenWALStore(NewMemStore(walTestPageSize), log2, WALConfig{}); !errors.Is(err, ErrWALCorrupt) {
		t.Fatalf("headerless-watermark recovery: %v, want ErrWALCorrupt", err)
	}
}

func TestWALRunBatchHelper(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{})

	var id PageID
	err := RunBatch(w, func() error {
		p, err := w.Allocate()
		if err != nil {
			return err
		}
		id = p.ID
		return w.Write(&Page{ID: id, Data: walPattern(walTestPageSize, 3)})
	})
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if _, err := w.Read(id); err != nil {
		t.Fatalf("read after RunBatch: %v", err)
	}

	boom := fmt.Errorf("boom")
	err = RunBatch(w, func() error {
		p, err := w.Allocate()
		if err != nil {
			return err
		}
		id = p.ID
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RunBatch error = %v, want boom", err)
	}
	if _, err := w.Read(id); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("failed RunBatch leaked page %d: %v", id, err)
	}

	// On a store with no batch support RunBatch just runs fn.
	if err := RunBatch(base, func() error { return nil }); err != nil {
		t.Fatalf("RunBatch on plain store: %v", err)
	}
}

func TestWALThroughChecksumAndRetry(t *testing.T) {
	// The intended full stack: WAL on top, retry and checksum below, all
	// over a fault-free MemStore. Exercises the Adopter/Syncer forwarding.
	mem := NewMemStore(walTestPageSize + ChecksumTrailerSize)
	cs, err := NewChecksumStore(mem)
	if err != nil {
		t.Fatalf("NewChecksumStore: %v", err)
	}
	rs := NewRetryStore(cs, RetryPolicy{MaxAttempts: 3})
	log := NewMemLog()
	w := openTestWAL(t, rs, log, WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	img := walPattern(walTestPageSize, 0x77)
	if err := w.Write(&Page{ID: p.ID, Data: img}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint through stack: %v", err)
	}
	got, err := w.Read(p.ID)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got.Data, img) {
		t.Fatalf("page corrupted through checksum+retry stack")
	}

	// Crash-reopen through the same stack: recovery adopts via the
	// forwarded Adopter chain.
	w2 := openTestWAL(t, rs, log, WALConfig{})
	if _, err := w2.Read(p.ID); err != nil {
		t.Fatalf("read after stacked recovery: %v", err)
	}
}

func TestWALConcurrentSingleOps(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{AutoCheckpointBytes: 64 * walTestPageSize})

	const workers = 8
	ids := make([]PageID, workers)
	for i := range ids {
		p, err := w.Allocate()
		if err != nil {
			t.Fatalf("Allocate: %v", err)
		}
		ids[i] = p.ID
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(id PageID, tag byte) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				if err := w.Write(&Page{ID: id, Data: walPattern(walTestPageSize, tag)}); err != nil {
					t.Errorf("Write: %v", err)
					return
				}
				if _, err := w.Read(id); err != nil {
					t.Errorf("Read: %v", err)
					return
				}
			}
		}(ids[i], byte(i))
	}
	wg.Wait()
	for i, id := range ids {
		p, err := w.Read(id)
		if err != nil {
			t.Fatalf("final read: %v", err)
		}
		if !bytes.Equal(p.Data, walPattern(walTestPageSize, byte(i))) {
			t.Fatalf("page %d holds another worker's data", id)
		}
	}
}

func TestWALStatsAndPagesInUse(t *testing.T) {
	base := NewMemStore(walTestPageSize)
	w := openTestWAL(t, base, NewMemLog(), WALConfig{})

	p, err := w.Allocate()
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if err := w.Write(&Page{ID: p.ID, Data: walPattern(walTestPageSize, 1)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := w.Read(p.ID); err != nil {
		t.Fatalf("Read: %v", err)
	}
	st := w.Stats()
	if st.Allocs != 1 || st.Writes != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v, want 1 alloc, 1 write, 1 read", st)
	}
	if got := w.PagesInUse(); got != 1 {
		t.Fatalf("PagesInUse = %d, want 1 (meta page excluded)", got)
	}
	if err := w.Free(p.ID); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if got := w.PagesInUse(); got != 0 {
		t.Fatalf("PagesInUse after free = %d, want 0", got)
	}
}
