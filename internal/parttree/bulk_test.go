package parttree

import (
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// collectRegion returns the sorted values matching a region query.
func collectRegion(t *testing.T, tr *Tree, reg geom.ConvexRegion) []uint64 {
	t.Helper()
	var got []uint64
	if err := tr.SearchRegion(reg, func(p Point) bool { got = append(got, p.Val); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

// The quickselect-partitioned bulk build must return exactly the
// incremental build's answers for simplex queries.
func TestBulkLoadDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 300, 6000} {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		}
		inc, _ := newTree(t, 512)
		for _, p := range pts {
			if err := inc.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		bulk, _ := newTree(t, 512)
		if err := bulk.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		if bulk.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, bulk.Len())
		}
		for q := 0; q < 40; q++ {
			x := rng.Float64() * 900
			y := rng.Float64() * 900
			reg := geom.NewRegion(
				geom.Constraint{A: -1, B: 0, C: -x},
				geom.Constraint{A: 0, B: -1, C: -y},
				geom.Constraint{A: 1, B: 1, C: x + y + 200},
			)
			want := collectRegion(t, inc, reg)
			got := collectRegion(t, bulk, reg)
			if len(want) != len(got) {
				t.Fatalf("n=%d: query got %d answers, incremental %d", n, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("n=%d: answers diverge at %d", n, i)
				}
			}
		}
	}
}

// nthElement must place the k-th order statistic at k with <= / >= fencing,
// matching a full sort, including on duplicate-heavy input.
func TestNthElement(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		pts := make([]Point, n)
		for i := range pts {
			v := float64(rng.Intn(20)) // heavy duplication
			if trial%2 == 0 {
				v = rng.Float64() * 1000
			}
			pts[i] = Point{X: v, Y: rng.Float64(), Val: uint64(i)}
		}
		sorted := append([]Point(nil), pts...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].X < sorted[b].X })
		k := rng.Intn(n)
		nthElement(pts, k, 0)
		if pts[k].X != sorted[k].X {
			t.Fatalf("trial %d: c[%d].X=%v, want order statistic %v", trial, k, pts[k].X, sorted[k].X)
		}
		for i := 0; i < k; i++ {
			if pts[i].X > pts[k].X {
				t.Fatalf("trial %d: c[%d] > c[k]", trial, i)
			}
		}
		for i := k + 1; i < n; i++ {
			if pts[i].X < pts[k].X {
				t.Fatalf("trial %d: c[%d] < c[k]", trial, i)
			}
		}
	}
}

// Bulk construction must cost far fewer page I/Os than the dynamized
// insert path, which rebuilds each point O(log n) times.
func TestBulkLoadIOAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pts := make([]Point, 20000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}
	incStore := pager.NewMemStore(4096)
	inc, _ := New(incStore, Config{})
	for _, p := range pts {
		if err := inc.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	bulkStore := pager.NewMemStore(4096)
	bulk, _ := New(bulkStore, Config{})
	if err := bulk.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	incIOs := incStore.Stats().IOs()
	bulkIOs := bulkStore.Stats().IOs()
	if bulkIOs*5 > incIOs {
		t.Fatalf("bulk load cost %d I/Os, dynamic inserts %d — want >= 5x reduction", bulkIOs, incIOs)
	}
}
