package parttree

import (
	"errors"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// TestPartTreeSurfacesStorageFaults: the partition tree's block merges and
// global rebuilds do a lot of page traffic; all of it must fail loudly,
// not corrupt silently or panic.
func TestPartTreeSurfacesStorageFaults(t *testing.T) {
	pts := make([]Point, 400)
	for i := range pts {
		pts[i] = Point{X: float64((i * 37) % 100), Y: float64((i * 61) % 100), Val: uint64(i)}
	}
	// x <= 70 and -x <= -10, i.e. the vertical band 10 <= x <= 70.
	region := geom.NewRegion(
		geom.Constraint{A: 1, B: 0, C: 70},
		geom.Constraint{A: -1, B: 0, C: -10},
	)
	for _, cfg := range []pager.FaultConfig{
		{Seed: 1, Read: pager.OpFaults{FailEvery: 9}},
		{Seed: 2, Write: pager.OpFaults{FailEvery: 9}},
		{Seed: 3, Alloc: pager.OpFaults{FailEvery: 4}},
		{Seed: 4, Free: pager.OpFaults{FailEvery: 3}},
	} {
		faulty := pager.NewFaultStore(pager.NewMemStore(256), cfg)
		tr, err := New(faulty, Config{})
		if err != nil {
			if !errors.Is(err, pager.ErrInjected) {
				t.Fatalf("cfg %+v: constructor error outside taxonomy: %v", cfg, err)
			}
			continue
		}
		var opErrs int
		check := func(err error, op string) {
			if err == nil {
				return
			}
			if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
				t.Fatalf("cfg %+v: %s error outside taxonomy: %v", cfg, op, err)
			}
			opErrs++
		}
		for _, p := range pts {
			check(tr.Insert(p), "insert")
		}
		check(tr.SearchRegion(region, func(Point) bool { return true }), "search")
		for _, p := range pts[:80] {
			_, err := tr.Delete(p)
			check(err, "delete")
		}
		if faulty.Counters().Total() > 0 && opErrs == 0 {
			t.Fatalf("cfg %+v: faults injected but no operation reported one", cfg)
		}
	}
}
