package parttree

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/kdnd"
	"mobidx/internal/pager"
)

// NDTree is the d-dimensional generalization of Tree, used for the §4.2
// remark that a 4-dimensional partition tree answers the two-dimensional
// MOR query in O(n^(3/4+ε) + k) I/Os — the almost-optimal bound in four
// dimensions. Cells are d-boxes from recursive median subdivision;
// queries are conjunctions of linear constraints (kdnd.Constraint), with
// box-vs-halfspace classification exact at box corners.
//
// Like Tree it is dynamized with the Overmars logarithmic method: static
// blocks of (at least) doubling sizes, binary-counter merges on insert,
// weak deletes with a half-dead global rebuild.
type NDTree struct {
	store   pager.Store
	dims    int
	fanout  int
	leafCap int
	blocks  []*ndBlock
	size    int
	dead    int
}

type ndBlock struct {
	root pager.PageID
	size int
}

// NDPoint is one indexed point.
type NDPoint struct {
	Coords []float64
	Val    uint64
}

// Page layout:
//
// Internal (type 13): off 0 type, off 2 count u16;
//
//	entries at off 8, (8·d + 4) bytes: box lo/hi per dim (f32) + child u32.
//
// Leaf (type 14): off 0 type, off 2 count u16;
//
//	points at off 8, (4·d + 4) bytes each.
const (
	ndTypeInternal = 13
	ndTypeLeaf     = 14
	ndHeader       = 8
)

// NewND creates an empty d-dimensional partition tree.
func NewND(store pager.Store, dims int) (*NDTree, error) {
	if dims < 1 {
		return nil, fmt.Errorf("parttree: dims must be >= 1, got %d", dims)
	}
	t := &NDTree{store: store, dims: dims}
	t.fanout = (store.PageSize() - ndHeader) / (8*dims + 4)
	t.leafCap = (store.PageSize() - ndHeader) / (4*dims + 4)
	if t.fanout < 2 || t.leafCap < 2 {
		return nil, fmt.Errorf("parttree: page size %d too small for %d dims", store.PageSize(), dims)
	}
	return t, nil
}

// Len returns the number of live points.
func (t *NDTree) Len() int { return t.size }

// Blocks returns the number of static blocks.
func (t *NDTree) Blocks() int { return len(t.blocks) }

func ndRound(p NDPoint) NDPoint {
	out := NDPoint{Coords: make([]float64, len(p.Coords)), Val: p.Val}
	for i, c := range p.Coords {
		out.Coords[i] = float64(float32(c))
	}
	return out
}

func ndBound(dims int, pts []NDPoint) kdnd.Box {
	b := kdnd.Box{Lo: make([]float64, dims), Hi: make([]float64, dims)}
	for d := 0; d < dims; d++ {
		b.Lo[d] = math.Inf(1)
		b.Hi[d] = math.Inf(-1)
	}
	for _, p := range pts {
		for d, c := range p.Coords {
			b.Lo[d] = math.Min(b.Lo[d], c)
			b.Hi[d] = math.Max(b.Hi[d], c)
		}
	}
	return b
}

// ndPartition splits pts into at most r balanced cells by repeatedly
// halving the largest cell at the median of its widest dimension.
func ndPartition(dims int, pts []NDPoint, r int) [][]NDPoint {
	out := [][]NDPoint{pts}
	for len(out) < r {
		bi, bn := -1, 1
		for i, c := range out {
			if len(c) > bn {
				bi, bn = i, len(c)
			}
		}
		if bi < 0 {
			break
		}
		c := out[bi]
		b := ndBound(dims, c)
		dim, spread := 0, -1.0
		for d := 0; d < dims; d++ {
			if s := b.Hi[d] - b.Lo[d]; s > spread {
				dim, spread = d, s
			}
		}
		sort.Slice(c, func(a, b int) bool { return c[a].Coords[dim] < c[b].Coords[dim] })
		mid := len(c) / 2
		out[bi] = c[:mid]
		out = append(out, c[mid:])
	}
	keep := out[:0]
	for _, c := range out {
		if len(c) > 0 {
			keep = append(keep, c)
		}
	}
	return keep
}

func put16nd(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16nd(b []byte) int    { return int(b[0]) | int(b[1])<<8 }
func put32nd(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32nd(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putf32nd(b []byte, f float64) { put32nd(b, math.Float32bits(float32(f))) }
func getf32nd(b []byte) float64    { return float64(math.Float32frombits(get32nd(b))) }

func (t *NDTree) buildStatic(pts []NDPoint) (pager.PageID, error) {
	if len(pts) <= t.leafCap {
		return t.writeLeaf(pts)
	}
	r := (len(pts) + t.leafCap - 1) / t.leafCap
	if r > t.fanout {
		r = t.fanout
	}
	if r < 2 {
		r = 2
	}
	cells := ndPartition(t.dims, pts, r)
	if len(cells) == 1 {
		cells = nil
		for i := 0; i < len(pts); i += t.leafCap {
			j := i + t.leafCap
			if j > len(pts) {
				j = len(pts)
			}
			cells = append(cells, pts[i:j])
		}
	}
	p, err := t.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = ndTypeInternal
	off := ndHeader
	count := 0
	entrySize := 8*t.dims + 4
	for _, c := range cells {
		child, err := t.buildStatic(c)
		if err != nil {
			return 0, err
		}
		b := ndBound(t.dims, c)
		for k := 0; k < t.dims; k++ {
			putf32nd(d[off+4*k:], b.Lo[k])
			putf32nd(d[off+4*t.dims+4*k:], b.Hi[k])
		}
		put32nd(d[off+8*t.dims:], uint32(child))
		off += entrySize
		count++
	}
	put16nd(d[2:], count)
	if err := t.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

func (t *NDTree) writeLeaf(pts []NDPoint) (pager.PageID, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return 0, err
	}
	d := p.Data
	d[0] = ndTypeLeaf
	put16nd(d[2:], len(pts))
	off := ndHeader
	for _, q := range pts {
		for k := 0; k < t.dims; k++ {
			putf32nd(d[off+4*k:], q.Coords[k])
		}
		put32nd(d[off+4*t.dims:], uint32(q.Val))
		off += 4*t.dims + 4
	}
	if err := t.store.Write(p); err != nil {
		return 0, err
	}
	return p.ID, nil
}

type ndCell struct {
	box   kdnd.Box
	child pager.PageID
}

func (t *NDTree) readNode(id pager.PageID) ([]NDPoint, []ndCell, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, nil, err
	}
	d := p.Data
	count := get16nd(d[2:])
	switch d[0] {
	case ndTypeLeaf:
		pts := make([]NDPoint, count)
		off := ndHeader
		for i := 0; i < count; i++ {
			coords := make([]float64, t.dims)
			for k := range coords {
				coords[k] = getf32nd(d[off+4*k:])
			}
			pts[i] = NDPoint{Coords: coords, Val: uint64(get32nd(d[off+4*t.dims:]))}
			off += 4*t.dims + 4
		}
		return pts, nil, nil
	case ndTypeInternal:
		cells := make([]ndCell, count)
		off := ndHeader
		for i := 0; i < count; i++ {
			box := kdnd.Box{Lo: make([]float64, t.dims), Hi: make([]float64, t.dims)}
			for k := 0; k < t.dims; k++ {
				box.Lo[k] = getf32nd(d[off+4*k:])
				box.Hi[k] = getf32nd(d[off+4*t.dims+4*k:])
			}
			cells[i] = ndCell{box: box, child: pager.PageID(get32nd(d[off+8*t.dims:]))}
			off += 8*t.dims + 4
		}
		return nil, cells, nil
	default:
		return nil, nil, fmt.Errorf("parttree: page %d has unknown type %d", id, d[0])
	}
}

func (t *NDTree) freeSubtree(id pager.PageID) error {
	_, cells, err := t.readNode(id)
	if err != nil {
		return err
	}
	for _, c := range cells {
		if err := t.freeSubtree(c.child); err != nil {
			return err
		}
	}
	return t.store.Free(id)
}

func (t *NDTree) collect(id pager.PageID, out *[]NDPoint) error {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return err
	}
	*out = append(*out, pts...)
	for _, c := range cells {
		if err := t.collect(c.child, out); err != nil {
			return err
		}
	}
	return nil
}

// BulkLoad replaces the contents with pts in one static block.
func (t *NDTree) BulkLoad(pts []NDPoint) error {
	for _, p := range pts {
		if len(p.Coords) != t.dims {
			return fmt.Errorf("parttree: point has %d coords, tree has %d dims", len(p.Coords), t.dims)
		}
		if p.Val > math.MaxUint32 {
			return fmt.Errorf("parttree: value %d does not fit in the 32-bit page slot", p.Val)
		}
	}
	for _, b := range t.blocks {
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.size = 0
	t.dead = 0
	if len(pts) == 0 {
		return nil
	}
	rounded := make([]NDPoint, len(pts))
	for i, p := range pts {
		rounded[i] = ndRound(p)
	}
	root, err := t.buildStatic(rounded)
	if err != nil {
		return err
	}
	t.blocks = []*ndBlock{{root: root, size: len(rounded)}}
	t.size = len(rounded)
	return nil
}

// Insert adds a point (logarithmic-method block merge).
func (t *NDTree) Insert(p NDPoint) error {
	if len(p.Coords) != t.dims {
		return fmt.Errorf("parttree: point has %d coords, tree has %d dims", len(p.Coords), t.dims)
	}
	if p.Val > math.MaxUint32 {
		return fmt.Errorf("parttree: value %d does not fit in the 32-bit page slot", p.Val)
	}
	p = ndRound(p)
	sort.Slice(t.blocks, func(a, b int) bool { return t.blocks[a].size < t.blocks[b].size })
	total := 1
	prefix := 0
	for prefix < len(t.blocks) && t.blocks[prefix].size <= total {
		total += t.blocks[prefix].size
		prefix++
	}
	pts := []NDPoint{p}
	for i := 0; i < prefix; i++ {
		if err := t.collect(t.blocks[i].root, &pts); err != nil {
			return err
		}
		if err := t.freeSubtree(t.blocks[i].root); err != nil {
			return err
		}
	}
	root, err := t.buildStatic(pts)
	if err != nil {
		return err
	}
	t.blocks = append(t.blocks[prefix:], &ndBlock{root: root, size: len(pts)})
	t.size++
	return nil
}

// Delete removes one matching point (weak delete + half-dead rebuild).
func (t *NDTree) Delete(p NDPoint) (bool, error) {
	if len(p.Coords) != t.dims {
		return false, fmt.Errorf("parttree: point has %d coords, tree has %d dims", len(p.Coords), t.dims)
	}
	p = ndRound(p)
	for _, b := range t.blocks {
		found, err := t.deleteFrom(b.root, p)
		if err != nil {
			return false, err
		}
		if found {
			b.size--
			t.size--
			t.dead++
			if t.dead > t.size {
				if err := t.rebuildAll(); err != nil {
					return false, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

func ndSame(a, b NDPoint) bool {
	if a.Val != b.Val {
		return false
	}
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			return false
		}
	}
	return true
}

func (t *NDTree) deleteFrom(id pager.PageID, p NDPoint) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if cells == nil {
		for i, q := range pts {
			if ndSame(q, p) {
				pts = append(pts[:i], pts[i+1:]...)
				if _, err := t.rewriteLeaf(id, pts); err != nil {
					return false, err
				}
				return true, nil
			}
		}
		return false, nil
	}
	for _, c := range cells {
		if !c.box.Contains(p.Coords) {
			continue
		}
		found, err := t.deleteFrom(c.child, p)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

func (t *NDTree) rewriteLeaf(id pager.PageID, pts []NDPoint) (pager.PageID, error) {
	pg := &pager.Page{ID: id, Data: make([]byte, t.store.PageSize())}
	d := pg.Data
	d[0] = ndTypeLeaf
	put16nd(d[2:], len(pts))
	off := ndHeader
	for _, q := range pts {
		for k := 0; k < t.dims; k++ {
			putf32nd(d[off+4*k:], q.Coords[k])
		}
		put32nd(d[off+4*t.dims:], uint32(q.Val))
		off += 4*t.dims + 4
	}
	return id, t.store.Write(pg)
}

func (t *NDTree) rebuildAll() error {
	var pts []NDPoint
	for _, b := range t.blocks {
		if err := t.collect(b.root, &pts); err != nil {
			return err
		}
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.dead = 0
	if len(pts) == 0 {
		return nil
	}
	root, err := t.buildStatic(pts)
	if err != nil {
		return err
	}
	t.blocks = []*ndBlock{{root: root, size: len(pts)}}
	return nil
}

// Destroy frees every page.
func (t *NDTree) Destroy() error {
	for _, b := range t.blocks {
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.size = 0
	t.dead = 0
	return nil
}

// ndClassify classifies a box against a constraint conjunction.
func ndClassify(b kdnd.Box, cs []kdnd.Constraint) int {
	rel := 1 // inside
	for _, c := range cs {
		lo, hi := ndExtremes(b, c)
		if lo > c.C+1e-9 {
			return 0 // outside
		}
		if hi > c.C+1e-9 {
			rel = 2 // partial
		}
	}
	return rel
}

func ndExtremes(b kdnd.Box, c kdnd.Constraint) (lo, hi float64) {
	for i, a := range c.Coef {
		if a >= 0 {
			lo += a * b.Lo[i]
			hi += a * b.Hi[i]
		} else {
			lo += a * b.Hi[i]
			hi += a * b.Lo[i]
		}
	}
	return lo, hi
}

func ndSatisfies(coords []float64, cs []kdnd.Constraint) bool {
	for _, c := range cs {
		s := 0.0
		for i, a := range c.Coef {
			s += a * coords[i]
		}
		if s > c.C+1e-9 {
			return false
		}
	}
	return true
}

// SearchConstraints reports every live point satisfying all constraints
// (the d-dimensional simplex range query).
func (t *NDTree) SearchConstraints(cs []kdnd.Constraint, fn func(NDPoint) bool) error {
	for _, c := range cs {
		if len(c.Coef) != t.dims {
			return fmt.Errorf("parttree: constraint has %d coefficients, tree has %d dims", len(c.Coef), t.dims)
		}
	}
	for _, b := range t.blocks {
		cont, err := t.searchNode(b.root, cs, fn)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func (t *NDTree) searchNode(id pager.PageID, cs []kdnd.Constraint, fn func(NDPoint) bool) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if cells == nil {
		for _, p := range pts {
			if ndSatisfies(p.Coords, cs) {
				if !fn(p) {
					return false, nil
				}
			}
		}
		return true, nil
	}
	for _, c := range cells {
		switch ndClassify(c.box, cs) {
		case 0:
		case 1:
			cont, err := t.reportAll(c.child, fn)
			if err != nil || !cont {
				return cont, err
			}
		default:
			cont, err := t.searchNode(c.child, cs, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

func (t *NDTree) reportAll(id pager.PageID, fn func(NDPoint) bool) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for _, p := range pts {
		if !fn(p) {
			return false, nil
		}
	}
	for _, c := range cells {
		cont, err := t.reportAll(c.child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
