package parttree

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/kdnd"
	"mobidx/internal/pager"
)

func rand4(rng *rand.Rand, val uint64) NDPoint {
	return NDPoint{
		Coords: []float64{
			rng.Float64() * 1000, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000,
		},
		Val: val,
	}
}

func TestNDValidation(t *testing.T) {
	st := pager.NewMemStore(512)
	if _, err := NewND(st, 0); err == nil {
		t.Fatal("dims=0 accepted")
	}
	tr, err := NewND(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(NDPoint{Coords: []float64{1, 2}, Val: 1}); err == nil {
		t.Fatal("wrong arity accepted")
	}
}

func TestNDRandomOpsAgainstBruteForce(t *testing.T) {
	st := pager.NewMemStore(512)
	tr, err := NewND(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(131))
	var ref []NDPoint
	next := uint64(0)
	for op := 0; op < 3000; op++ {
		if len(ref) == 0 || rng.Float64() < 0.62 {
			p := rand4(rng, next)
			next++
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, ndRound(p))
		} else {
			i := rng.Intn(len(ref))
			found, err := tr.Delete(ref[i])
			if err != nil || !found {
				t.Fatalf("op %d: delete found=%v err=%v", op, found, err)
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
	}
	for trial := 0; trial < 30; trial++ {
		cs := make([]kdnd.Constraint, 3)
		for i := range cs {
			cs[i] = kdnd.Constraint{
				Coef: []float64{
					rng.Float64()*2 - 1, rng.Float64()*2 - 1,
					rng.Float64()*2 - 1, rng.Float64()*2 - 1,
				},
				C: rng.Float64() * 2000,
			}
		}
		want := map[uint64]bool{}
		for _, p := range ref {
			if ndSatisfies(p.Coords, cs) {
				want[p.Val] = true
			}
		}
		got := map[uint64]bool{}
		if err := tr.SearchConstraints(cs, func(p NDPoint) bool { got[p.Val] = true; return true }); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
	}
}

func TestNDBulkLoadAndDestroy(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := NewND(st, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(137))
	pts := make([]NDPoint, 30000)
	for i := range pts {
		pts[i] = rand4(rng, uint64(i))
	}
	if err := tr.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 30000 || tr.Blocks() != 1 {
		t.Fatalf("Len=%d blocks=%d", tr.Len(), tr.Blocks())
	}
	count := 0
	if err := tr.SearchConstraints(nil, func(NDPoint) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 30000 {
		t.Fatalf("full scan found %d", count)
	}
	if err := tr.Destroy(); err != nil {
		t.Fatal(err)
	}
	if st.PagesInUse() != 0 {
		t.Fatalf("%d pages leaked", st.PagesInUse())
	}
}

// The 4-dimensional simplex query cost must scale well below linear:
// O(n^(3/4+ε)) predicts ~8.5x for 16x the points; allow up to 12x and
// reject the linear 16x.
func TestNDQuerySublinear(t *testing.T) {
	measure := func(n int) float64 {
		st := pager.NewMemStore(4096)
		tr, _ := NewND(st, 4)
		rng := rand.New(rand.NewSource(139))
		pts := make([]NDPoint, n)
		for i := range pts {
			pts[i] = rand4(rng, uint64(i))
		}
		if err := tr.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		// A thin slab in a diagonal 4-dimensional direction.
		total := int64(0)
		const reps = 8
		for r := 0; r < reps; r++ {
			c := 1000 + rng.Float64()*2000
			cs := []kdnd.Constraint{
				{Coef: []float64{1, 1, 1, 1}, C: c + 1},
				{Coef: []float64{-1, -1, -1, -1}, C: -(c - 1)},
			}
			before := st.Stats()
			_ = tr.SearchConstraints(cs, func(NDPoint) bool { return true })
			total += st.Stats().Sub(before).Reads
		}
		return float64(total) / reps
	}
	small := measure(20000)
	big := measure(320000)
	if big > small*12 {
		t.Fatalf("4D query grew %.1fx for 16x data (want ~8.5x, linear=16x)", big/small)
	}
	if math.IsNaN(big) || big <= 0 {
		t.Fatal("no I/O measured")
	}
}
