// Package parttree implements the (almost) optimal simplex range searching
// structure of §3.3-3.4: a partition tree in the style of Matousek
// ("Efficient Partition Trees"), externalized following Agarwal et al.
// ("Efficient Searching with Linear Constraints") and made dynamic with the
// logarithmic method of Overmars ("The Design of Dynamic Data Structures").
//
// Each internal node holds a balanced partition of its points into up to B
// cells (B = page fanout); a simplex query recurses only into cells whose
// boundary the query crosses, reports whole subtrees for cells inside the
// region, and skips cells outside it. Because a line crosses O(√r) cells
// of a balanced r-cell partition, the query time is O(n^(1/2+ε) + k) I/Os —
// matching the Theorem 1 lower bound for linear space up to ε.
//
// Construction note (documented substitution): cells are produced by
// recursive median subdivision on alternating axes — a balanced partition
// whose cells are boxes — rather than by Matousek's test-set/cutting
// construction with triangle cells. The O(√r) crossing bound for balanced
// median subdivisions is the classic k-d partition bound; the package
// exposes MaxLineCrossings so tests (and EXPERIMENTS.md) verify the
// crossing number empirically instead of assuming it.
//
// Dynamization: the tree is a collection of static blocks with strictly
// growing sizes. An insert rebuilds the smallest prefix of blocks into one
// (O(log²) amortized I/Os); a delete removes the point from its static
// block in place (weak deletion — cells only ever shrink logically) and a
// global rebuild is triggered once half the points are gone.
package parttree

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// Point is one indexed point with an opaque 32-bit reference.
type Point struct {
	X, Y float64
	Val  uint64
}

// Config tunes the tree. Zero values select page-derived defaults.
type Config struct {
	// Fanout caps the number of cells per internal node; 0 derives it
	// from the page size (one page per node).
	Fanout int
	// LeafCap caps points per leaf; 0 derives it from the page size.
	LeafCap int
}

// Page layout:
//
// Internal (type 9): off 0 type, off 2 count u16;
//
//	entries at off 8, 20 bytes: cell rect (4 × f32) + child page u32.
//
// Leaf (type 10): off 0 type, off 2 count u16;
//
//	points at off 8, 12 bytes: x f32, y f32, val u32.
const (
	typeInternal = 9
	typeLeaf     = 10

	headerSize = 8
	cellSize   = 20
	pointSize  = 12
)

// Tree is a dynamized partition tree.
type Tree struct {
	store   pager.Store
	fanout  int
	leafCap int
	blocks  []*block // sorted by size ascending after maintenance
	size    int      // live points
	dead    int      // weak-deleted points since last global rebuild
}

// block is one static partition tree.
type block struct {
	root   pager.PageID
	height int // 1 = root is leaf
	size   int // live points in the block
}

// New creates an empty tree.
func New(store pager.Store, cfg Config) (*Tree, error) {
	t := &Tree{store: store}
	t.fanout = cfg.Fanout
	if t.fanout == 0 {
		t.fanout = (store.PageSize() - headerSize) / cellSize
	}
	t.leafCap = cfg.LeafCap
	if t.leafCap == 0 {
		t.leafCap = (store.PageSize() - headerSize) / pointSize
	}
	if t.fanout < 2 || t.leafCap < 2 {
		return nil, fmt.Errorf("parttree: page size %d too small", store.PageSize())
	}
	return t, nil
}

// Len returns the number of live points.
func (t *Tree) Len() int { return t.size }

// Blocks returns the number of static blocks (O(log n)).
func (t *Tree) Blocks() int { return len(t.blocks) }

func roundPoint(p Point) Point {
	return Point{X: float64(float32(p.X)), Y: float64(float32(p.Y)), Val: p.Val}
}

// ---------------------------------------------------------------------------
// Static block construction
// ---------------------------------------------------------------------------

func put16(b []byte, v int) { b[0] = byte(v); b[1] = byte(v >> 8) }
func get16(b []byte) int    { return int(b[0]) | int(b[1])<<8 }
func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func putf32(b []byte, f float64) { put32(b, math.Float32bits(float32(f))) }
func getf32(b []byte) float64    { return float64(math.Float32frombits(get32(b))) }

func bound(pts []Point) geom.Rect {
	r := geom.EmptyRect()
	for _, p := range pts {
		r = r.Extend(geom.Point{X: p.X, Y: p.Y})
	}
	return r
}

// partition splits pts into at most fanout balanced cells by recursive
// median subdivision on the wider-spread axis.
func partition(pts []Point, fanout int) [][]Point {
	out := [][]Point{pts}
	for len(out) < fanout {
		// Split the largest cell.
		bi, bn := -1, 1
		for i, c := range out {
			if len(c) > bn {
				bi, bn = i, len(c)
			}
		}
		if bi < 0 {
			break // all cells are singletons or empty
		}
		c := out[bi]
		r := bound(c)
		dim := 0
		if r.MaxY-r.MinY > r.MaxX-r.MinX {
			dim = 1
		}
		mid := len(c) / 2
		nthElement(c, mid, dim)
		out[bi] = c[:mid]
		out = append(out, c[mid:])
	}
	// Drop empties (possible with heavy duplication).
	keep := out[:0]
	for _, c := range out {
		if len(c) > 0 {
			keep = append(keep, c)
		}
	}
	return keep
}

func coordOf(p Point, dim int) float64 {
	if dim == 0 {
		return p.X
	}
	return p.Y
}

// nthElement partially orders c by the dim coordinate so that c[k] holds
// the value it would have after a full sort, everything before it compares
// <= and everything after >=. Expected O(n) — a three-way-partition
// quickselect — where the full sort each median split previously paid is
// O(n log n); across the O(fanout) splits of one node that asymptotic gap
// dominated static-block construction time.
func nthElement(c []Point, k, dim int) {
	lo, hi := 0, len(c)
	for hi-lo > 1 {
		// Median-of-three pivot guards against sorted runs.
		a, b, d := coordOf(c[lo], dim), coordOf(c[(lo+hi)/2], dim), coordOf(c[hi-1], dim)
		pv := a
		switch {
		case (a <= b && b <= d) || (d <= b && b <= a):
			pv = b
		case (a <= d && d <= b) || (b <= d && d <= a):
			pv = d
		}
		// Dutch-flag partition into < pv | == pv | > pv; duplicate-heavy
		// inputs collapse into the middle band instead of degrading to
		// quadratic behaviour.
		lt, i, gt := lo, lo, hi
		for i < gt {
			v := coordOf(c[i], dim)
			switch {
			case v < pv:
				c[lt], c[i] = c[i], c[lt]
				lt++
				i++
			case v > pv:
				gt--
				c[i], c[gt] = c[gt], c[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// buildStatic writes a static partition tree for pts (already rounded) and
// returns its root and height.
func (t *Tree) buildStatic(pts []Point) (pager.PageID, int, error) {
	if len(pts) <= t.leafCap {
		return t.writeLeaf(pts)
	}
	// Cap the partition arity so cells stay at least a leaf-page large:
	// over-splitting would leave leaves nearly empty and multiply the
	// boundary I/O, destroying the √n query bound.
	r := (len(pts) + t.leafCap - 1) / t.leafCap
	if r > t.fanout {
		r = t.fanout
	}
	if r < 2 {
		r = 2
	}
	cells := partition(pts, r)
	if len(cells) == 1 {
		// All points identical: overflow leaf chainless fallback — split
		// arbitrarily to respect the page bound.
		cells = nil
		for i := 0; i < len(pts); i += t.leafCap {
			j := i + t.leafCap
			if j > len(pts) {
				j = len(pts)
			}
			cells = append(cells, pts[i:j])
		}
	}
	p, err := t.store.Allocate()
	if err != nil {
		return 0, 0, err
	}
	d := p.Data
	d[0] = typeInternal
	maxH := 0
	off := headerSize
	count := 0
	for _, c := range cells {
		child, h, err := t.buildStatic(c)
		if err != nil {
			return 0, 0, err
		}
		if h > maxH {
			maxH = h
		}
		r := bound(c)
		putf32(d[off:], r.MinX)
		putf32(d[off+4:], r.MinY)
		putf32(d[off+8:], r.MaxX)
		putf32(d[off+12:], r.MaxY)
		put32(d[off+16:], uint32(child))
		off += cellSize
		count++
	}
	put16(d[2:], count)
	if err := t.store.Write(p); err != nil {
		return 0, 0, err
	}
	return p.ID, maxH + 1, nil
}

func (t *Tree) writeLeaf(pts []Point) (pager.PageID, int, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return 0, 0, err
	}
	d := p.Data
	d[0] = typeLeaf
	put16(d[2:], len(pts))
	off := headerSize
	for _, q := range pts {
		putf32(d[off:], q.X)
		putf32(d[off+4:], q.Y)
		put32(d[off+8:], uint32(q.Val))
		off += pointSize
	}
	if err := t.store.Write(p); err != nil {
		return 0, 0, err
	}
	return p.ID, 1, nil
}

type cellEntry struct {
	rect  geom.Rect
	child pager.PageID
}

func (t *Tree) readNode(id pager.PageID) (leafPts []Point, cells []cellEntry, err error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, nil, err
	}
	d := p.Data
	count := get16(d[2:])
	switch d[0] {
	case typeLeaf:
		pts := make([]Point, count)
		off := headerSize
		for i := 0; i < count; i++ {
			pts[i] = Point{X: getf32(d[off:]), Y: getf32(d[off+4:]), Val: uint64(get32(d[off+8:]))}
			off += pointSize
		}
		return pts, nil, nil
	case typeInternal:
		cs := make([]cellEntry, count)
		off := headerSize
		for i := 0; i < count; i++ {
			cs[i] = cellEntry{
				rect: geom.Rect{
					MinX: getf32(d[off:]), MinY: getf32(d[off+4:]),
					MaxX: getf32(d[off+8:]), MaxY: getf32(d[off+12:]),
				},
				child: pager.PageID(get32(d[off+16:])),
			}
			off += cellSize
		}
		return nil, cs, nil
	default:
		return nil, nil, fmt.Errorf("parttree: page %d has unknown type %d", id, d[0])
	}
}

func (t *Tree) freeSubtree(id pager.PageID) error {
	_, cells, err := t.readNode(id)
	if err != nil {
		return err
	}
	for _, c := range cells {
		if err := t.freeSubtree(c.child); err != nil {
			return err
		}
	}
	return t.store.Free(id)
}

// collect gathers every live point of a subtree.
func (t *Tree) collect(id pager.PageID, out *[]Point) error {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return err
	}
	*out = append(*out, pts...)
	for _, c := range cells {
		if err := t.collect(c.child, out); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Dynamization (Overmars logarithmic method)
// ---------------------------------------------------------------------------

// Insert adds a point, rebuilding the smallest prefix of blocks whose
// total (plus the new point) fits the next power-of-two budget.
func (t *Tree) Insert(p Point) error {
	if p.Val > math.MaxUint32 {
		return fmt.Errorf("parttree: value %d does not fit in the 32-bit page slot", p.Val)
	}
	p = roundPoint(p)
	sort.Slice(t.blocks, func(a, b int) bool { return t.blocks[a].size < t.blocks[b].size })
	// Binary-counter merge: absorb every block no larger than the running
	// total, so block sizes keep (at least) doubling and at most
	// O(log n) blocks exist; each point is rebuilt O(log n) times.
	total := 1
	prefix := 0
	for prefix < len(t.blocks) && t.blocks[prefix].size <= total {
		total += t.blocks[prefix].size
		prefix++
	}
	pts := []Point{p}
	for i := 0; i < prefix; i++ {
		if err := t.collect(t.blocks[i].root, &pts); err != nil {
			return err
		}
		if err := t.freeSubtree(t.blocks[i].root); err != nil {
			return err
		}
	}
	root, h, err := t.buildStatic(pts)
	if err != nil {
		return err
	}
	nb := &block{root: root, height: h, size: len(pts)}
	t.blocks = append(t.blocks[prefix:], nb)
	t.size++
	return nil
}

// Delete removes one point matching p (after float32 rounding) from
// whichever block holds it; it reports whether a point was removed. Once
// half the inserted points have been deleted the whole structure is
// rebuilt, keeping space linear in the live count.
func (t *Tree) Delete(p Point) (bool, error) {
	p = roundPoint(p)
	for _, b := range t.blocks {
		found, err := t.deleteFrom(b.root, p)
		if err != nil {
			return false, err
		}
		if found {
			b.size--
			t.size--
			t.dead++
			if t.dead > t.size {
				if err := t.rebuildAll(); err != nil {
					return false, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

func (t *Tree) deleteFrom(id pager.PageID, p Point) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if cells == nil {
		for i, q := range pts {
			if q.Val == p.Val && q.X == p.X && q.Y == p.Y {
				pts = append(pts[:i], pts[i+1:]...)
				// Rewrite the leaf in place (static structure, weak delete).
				pg := &pager.Page{ID: id, Data: make([]byte, t.store.PageSize())}
				d := pg.Data
				d[0] = typeLeaf
				put16(d[2:], len(pts))
				off := headerSize
				for _, q := range pts {
					putf32(d[off:], q.X)
					putf32(d[off+4:], q.Y)
					put32(d[off+8:], uint32(q.Val))
					off += pointSize
				}
				return true, t.store.Write(pg)
			}
		}
		return false, nil
	}
	for _, c := range cells {
		if !c.rect.Contains(geom.Point{X: p.X, Y: p.Y}) {
			continue
		}
		found, err := t.deleteFrom(c.child, p)
		if err != nil || found {
			return found, err
		}
	}
	return false, nil
}

// BulkLoad replaces the tree's contents with pts in a single static block —
// the fastest way to construct a large tree (the dynamic Insert path pays
// the logarithmic method's amortized rebuilds).
func (t *Tree) BulkLoad(pts []Point) error {
	for _, p := range pts {
		if p.Val > math.MaxUint32 {
			return fmt.Errorf("parttree: value %d does not fit in the 32-bit page slot", p.Val)
		}
	}
	for _, b := range t.blocks {
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.dead = 0
	t.size = 0
	if len(pts) == 0 {
		return nil
	}
	rounded := make([]Point, len(pts))
	for i, p := range pts {
		rounded[i] = roundPoint(p)
	}
	root, h, err := t.buildStatic(rounded)
	if err != nil {
		return err
	}
	t.blocks = []*block{{root: root, height: h, size: len(rounded)}}
	t.size = len(rounded)
	return nil
}

// Destroy frees every page of every block; the tree must not be used
// afterwards.
func (t *Tree) Destroy() error {
	for _, b := range t.blocks {
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.size = 0
	t.dead = 0
	return nil
}

func (t *Tree) rebuildAll() error {
	var pts []Point
	for _, b := range t.blocks {
		if err := t.collect(b.root, &pts); err != nil {
			return err
		}
		if err := t.freeSubtree(b.root); err != nil {
			return err
		}
	}
	t.blocks = nil
	t.dead = 0
	if len(pts) == 0 {
		return nil
	}
	root, h, err := t.buildStatic(pts)
	if err != nil {
		return err
	}
	t.blocks = []*block{{root: root, height: h, size: len(pts)}}
	return nil
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

// SearchRegion reports every live point inside the convex region: the
// simplex range query of §3.3.
func (t *Tree) SearchRegion(reg geom.ConvexRegion, fn func(Point) bool) error {
	for _, b := range t.blocks {
		cont, err := t.searchNode(b.root, reg, fn)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func (t *Tree) searchNode(id pager.PageID, reg geom.ConvexRegion, fn func(Point) bool) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if cells == nil {
		for _, p := range pts {
			if reg.ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
				if !fn(p) {
					return false, nil
				}
			}
		}
		return true, nil
	}
	for _, c := range cells {
		switch reg.ClassifyRect(c.rect) {
		case geom.Outside:
		case geom.Inside:
			cont, err := t.reportSubtree(c.child, fn)
			if err != nil || !cont {
				return cont, err
			}
		default:
			cont, err := t.searchNode(c.child, reg, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

func (t *Tree) reportSubtree(id pager.PageID, fn func(Point) bool) (bool, error) {
	pts, cells, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for _, p := range pts {
		if !fn(p) {
			return false, nil
		}
	}
	for _, c := range cells {
		cont, err := t.reportSubtree(c.child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// MaxLineCrossings returns, for the root partition of the largest block,
// the number of cells the given line crosses — the quantity Matousek
// bounds by O(√r). Tests use it to validate the construction empirically.
func (t *Tree) MaxLineCrossings(line geom.Constraint) (crossed, cells int, err error) {
	if len(t.blocks) == 0 {
		return 0, 0, nil
	}
	big := t.blocks[0]
	for _, b := range t.blocks {
		if b.size > big.size {
			big = b
		}
	}
	_, cs, err := t.readNode(big.root)
	if err != nil {
		return 0, 0, err
	}
	for _, c := range cs {
		if rectCrossesLine(c.rect, line) {
			crossed++
		}
	}
	return crossed, len(cs), nil
}

// rectCrossesLine reports whether the line A·x + B·y = C intersects the
// interior-or-boundary of r without containing it on one side.
func rectCrossesLine(r geom.Rect, line geom.Constraint) bool {
	corners := r.Corners()
	neg, pos := false, false
	for _, p := range corners {
		v := line.Eval(p)
		if v < -geom.Eps {
			neg = true
		}
		if v > geom.Eps {
			pos = true
		}
	}
	return neg && pos
}
