package parttree

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

func newTree(t *testing.T, pageSize int) (*Tree, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(pageSize)
	tr, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func halfPlane(a, b, c float64) geom.ConvexRegion {
	return geom.NewRegion(geom.Constraint{A: a, B: b, C: c})
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, 512)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(Point{X: float64(i % 20), Y: float64(i / 20), Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Half-plane x + y <= 5.
	got := map[uint64]bool{}
	_ = tr.SearchRegion(halfPlane(1, 1, 5), func(p Point) bool { got[p.Val] = true; return true })
	want := 0
	for i := 0; i < 300; i++ {
		if float64(i%20)+float64(i/20) <= 5 {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("got %d want %d", len(got), want)
	}
}

func TestRandomOpsAgainstBruteForce(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(51))
	var ref []Point
	nextVal := uint64(0)
	for op := 0; op < 4000; op++ {
		switch {
		case len(ref) == 0 || rng.Float64() < 0.6:
			p := Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: nextVal}
			nextVal++
			if err := tr.Insert(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, roundPoint(p))
		default:
			i := rng.Intn(len(ref))
			found, err := tr.Delete(ref[i])
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			if !found {
				t.Fatalf("op %d: delete missed %+v", op, ref[i])
			}
			ref = append(ref[:i], ref[i+1:]...)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
	}
	for trial := 0; trial < 50; trial++ {
		reg := geom.NewRegion(
			geom.Constraint{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, C: rng.Float64() * 1000},
			geom.Constraint{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, C: rng.Float64() * 1000},
		)
		want := map[uint64]bool{}
		for _, p := range ref {
			if reg.ContainsPoint(geom.Point{X: p.X, Y: p.Y}) {
				want[p.Val] = true
			}
		}
		got := map[uint64]bool{}
		_ = tr.SearchRegion(reg, func(p Point) bool { got[p.Val] = true; return true })
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for v := range want {
			if !got[v] {
				t.Fatalf("missing %d", v)
			}
		}
	}
}

func TestBlocksLogarithmic(t *testing.T) {
	tr, _ := newTree(t, 512)
	for i := 0; i < 5000; i++ {
		_ = tr.Insert(Point{X: rand.Float64(), Y: rand.Float64(), Val: uint64(i)})
	}
	// log2(5000) ≈ 12.3; the logarithmic method keeps one block per
	// occupied size class.
	if tr.Blocks() > 14 {
		t.Fatalf("%d blocks for 5000 points", tr.Blocks())
	}
}

func TestDeleteTriggersRebuild(t *testing.T) {
	tr, st := newTree(t, 512)
	rng := rand.New(rand.NewSource(53))
	var ref []Point
	for i := 0; i < 2000; i++ {
		p := Point{X: rng.Float64() * 100, Y: rng.Float64() * 100, Val: uint64(i)}
		_ = tr.Insert(p)
		ref = append(ref, roundPoint(p))
	}
	full := st.PagesInUse()
	for i := 0; i < 1900; i++ {
		found, err := tr.Delete(ref[i])
		if err != nil || !found {
			t.Fatalf("delete %d: %v %v", i, found, err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// The half-dead rebuild must have reclaimed most of the space.
	if st.PagesInUse() > full/4 {
		t.Fatalf("pages %d of %d after 95%% deletion", st.PagesInUse(), full)
	}
	// Remaining points still searchable.
	got := 0
	_ = tr.SearchRegion(halfPlane(0, 0, 1), func(Point) bool { got++; return true }) // 0 <= 1: all
	if got != 100 {
		t.Fatalf("found %d of 100 after rebuild", got)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr, _ := newTree(t, 512)
	_ = tr.Insert(Point{X: 1, Y: 1, Val: 1})
	found, err := tr.Delete(Point{X: 2, Y: 2, Val: 1})
	if err != nil || found {
		t.Fatalf("found=%v err=%v", found, err)
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Point{X: 3, Y: 3, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	_ = tr.SearchRegion(halfPlane(1, 0, 3), func(Point) bool { got++; return true })
	if got != 500 {
		t.Fatalf("found %d duplicates", got)
	}
	for i := 0; i < 500; i++ {
		found, err := tr.Delete(Point{X: 3, Y: 3, Val: uint64(i)})
		if err != nil || !found {
			t.Fatalf("delete dup %d: %v %v", i, found, err)
		}
	}
}

func TestEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 512)
	for i := 0; i < 400; i++ {
		_ = tr.Insert(Point{X: float64(i), Y: 0, Val: uint64(i)})
	}
	n := 0
	_ = tr.SearchRegion(halfPlane(0, 0, 1), func(Point) bool { n++; return n < 6 })
	if n != 6 {
		t.Fatalf("early stop visited %d", n)
	}
}

// The crossing number of the root partition must be ~O(√r): the property
// the whole query bound rests on (Matousek's lemma, checked empirically).
func TestCrossingNumberSqrt(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(59))
	pts := make([]Point, 200000)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
	}
	if err := tr.BulkLoad(pts); err != nil {
		t.Fatal(err)
	}
	worst := 0
	var cells int
	for trial := 0; trial < 60; trial++ {
		// Random line through the data.
		theta := rng.Float64() * math.Pi
		a, b := math.Cos(theta), math.Sin(theta)
		c := a*rng.Float64()*1000 + b*rng.Float64()*1000
		crossed, n, err := tr.MaxLineCrossings(geom.Constraint{A: a, B: b, C: c})
		if err != nil {
			t.Fatal(err)
		}
		cells = n
		if crossed > worst {
			worst = crossed
		}
	}
	limit := int(4*math.Sqrt(float64(cells))) + 2
	if worst > limit {
		t.Fatalf("worst crossing %d of %d cells exceeds ~4√r = %d", worst, cells, limit)
	}
}

// Simplex query I/O must scale ~√n: measure at two sizes and check the
// growth is far below linear.
func TestQueryIOSublinear(t *testing.T) {
	measure := func(n int) float64 {
		st := pager.NewMemStore(4096)
		tr, _ := New(st, Config{})
		rng := rand.New(rand.NewSource(61))
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000, Val: uint64(i)}
		}
		if err := tr.BulkLoad(pts); err != nil {
			t.Fatal(err)
		}
		// Thin wedge with small output: stresses boundary crossing cost.
		reg := geom.NewRegion(
			geom.Constraint{A: 1, B: 1, C: 1000.5},
			geom.Constraint{A: -1, B: -1, C: -999.5},
		)
		total := int64(0)
		const reps = 5
		for r := 0; r < reps; r++ {
			before := st.Stats()
			_ = tr.SearchRegion(reg, func(Point) bool { return true })
			total += st.Stats().Sub(before).Reads
		}
		return float64(total) / reps
	}
	small := measure(20000)
	big := measure(320000) // 16x the points
	// √16 = 4; allow generous slack but reject linear growth (16x).
	if big > small*9 {
		t.Fatalf("query I/O grew %vx for 16x data (want ~4x)", big/small)
	}
}
