// Package route implements the 1.5-dimensional problem of §4.1: objects
// move in the plane but only along a fixed network of routes, each a chain
// of straight line segments.
//
// The route geometry is indexed by a standard SAM (the R*-tree), which the
// paper argues is cheap to maintain: there are far fewer routes than
// objects and they change rarely. Each route carries its own 1-dimensional
// mobile-object index (the Dual-B+ method) over arc-length positions. A
// two-dimensional MOR query is decomposed: the SAM finds the route
// segments crossing the query rectangle, each intersection is clipped to
// an arc-length interval, and every interval becomes a 1-dimensional MOR
// query on that route's index.
package route

import (
	"fmt"
	"math"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/pager"
	"mobidx/internal/rstar"
)

// RouteID identifies a route in the network.
type RouteID uint32

// Route is a polyline with cumulative arc lengths; objects on the route
// are addressed by arc length from its start.
type Route struct {
	ID  RouteID
	Pts []geom.Point
	cum []float64 // cum[i] = arc length at Pts[i]
}

// Length returns the total arc length.
func (r *Route) Length() float64 { return r.cum[len(r.cum)-1] }

// PointAt maps an arc length s ∈ [0, Length] to a point on the route.
func (r *Route) PointAt(s float64) geom.Point {
	if s <= 0 {
		return r.Pts[0]
	}
	for i := 1; i < len(r.cum); i++ {
		if s <= r.cum[i] {
			f := (s - r.cum[i-1]) / (r.cum[i] - r.cum[i-1])
			a, b := r.Pts[i-1], r.Pts[i]
			return geom.Point{X: a.X + f*(b.X-a.X), Y: a.Y + f*(b.Y-a.Y)}
		}
	}
	return r.Pts[len(r.Pts)-1]
}

// Config configures a network.
type Config struct {
	// VMin and VMax bound the speeds (along-route) of moving objects.
	VMin, VMax float64
	// C is the observation-index count for each route's Dual-B+ index.
	C int
	// Codec is the on-page record precision for the per-route indexes.
	Codec bptree.Codec
}

// Network is a route network with per-route mobile-object indexes.
type Network struct {
	cfg     Config
	store   pager.Store
	sam     *rstar.Tree
	routes  map[RouteID]*Route
	order   []RouteID // insertion order, for deterministic iteration
	indexes map[RouteID]*core.DualBPlus
}

// NewNetwork creates an empty network on the given store.
func NewNetwork(store pager.Store, cfg Config) (*Network, error) {
	if cfg.VMin <= 0 || cfg.VMax < cfg.VMin {
		return nil, fmt.Errorf("route: invalid speed band [%v, %v]", cfg.VMin, cfg.VMax)
	}
	if cfg.C == 0 {
		cfg.C = 4
	}
	sam, err := rstar.New(store, rstar.Config{})
	if err != nil {
		return nil, err
	}
	return &Network{
		cfg:     cfg,
		store:   store,
		sam:     sam,
		routes:  make(map[RouteID]*Route),
		indexes: make(map[RouteID]*core.DualBPlus),
	}, nil
}

// samVal packs a route id and segment index into the R*-tree's 32-bit
// reference: 16 bits each.
func samVal(rid RouteID, seg int) (uint64, error) {
	if rid > math.MaxUint16 {
		return 0, fmt.Errorf("route: route id %d exceeds 16 bits", rid)
	}
	if seg > math.MaxUint16 {
		return 0, fmt.Errorf("route: segment index %d exceeds 16 bits", seg)
	}
	return uint64(rid)<<16 | uint64(seg), nil
}

// AddRoute registers a polyline route. Routes must have at least two
// distinct points and distinct ids.
func (n *Network) AddRoute(id RouteID, pts []geom.Point) (*Route, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("route: route %d needs at least two points", id)
	}
	if _, dup := n.routes[id]; dup {
		return nil, fmt.Errorf("route: duplicate route id %d", id)
	}
	r := &Route{ID: id, Pts: pts, cum: make([]float64, len(pts))}
	for i := 1; i < len(pts); i++ {
		dx := pts[i].X - pts[i-1].X
		dy := pts[i].Y - pts[i-1].Y
		seg := math.Hypot(dx, dy)
		if seg == 0 {
			return nil, fmt.Errorf("route: route %d has a zero-length segment at %d", id, i)
		}
		r.cum[i] = r.cum[i-1] + seg
	}
	for i := 1; i < len(pts); i++ {
		v, err := samVal(id, i-1)
		if err != nil {
			return nil, err
		}
		seg := geom.Segment{A: pts[i-1], B: pts[i]}
		if err := n.sam.Insert(rstar.Item{Rect: seg.Bound(), Val: v}); err != nil {
			return nil, err
		}
	}
	ix, err := core.NewDualBPlus(n.store, core.DualBPlusConfig{
		Terrain: dual.Terrain{YMax: r.Length(), VMin: n.cfg.VMin, VMax: n.cfg.VMax},
		C:       n.cfg.C,
		Codec:   n.cfg.Codec,
	})
	if err != nil {
		return nil, err
	}
	n.routes[id] = r
	n.order = append(n.order, id)
	n.indexes[id] = ix
	return r, nil
}

// RemoveRoute drops a route and its per-route index. All objects on the
// route must have been deleted first (they would otherwise dangle).
func (n *Network) RemoveRoute(id RouteID) error {
	r, ok := n.routes[id]
	if !ok {
		return fmt.Errorf("route: unknown route %d", id)
	}
	if n.indexes[id].Len() != 0 {
		return fmt.Errorf("route: route %d still carries %d objects", id, n.indexes[id].Len())
	}
	for i := 1; i < len(r.Pts); i++ {
		v, err := samVal(id, i-1)
		if err != nil {
			return err
		}
		seg := geom.Segment{A: r.Pts[i-1], B: r.Pts[i]}
		found, err := n.sam.Delete(rstar.Item{Rect: seg.Bound(), Val: v})
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("route: segment %d of route %d missing from SAM", i-1, id)
		}
	}
	delete(n.routes, id)
	delete(n.indexes, id)
	for i, rid := range n.order {
		if rid == id {
			n.order = append(n.order[:i], n.order[i+1:]...)
			break
		}
	}
	return nil
}

// Route returns a registered route.
func (n *Network) Route(id RouteID) (*Route, bool) {
	r, ok := n.routes[id]
	return r, ok
}

// Len returns the total number of indexed objects across routes.
func (n *Network) Len() int {
	total := 0
	for _, ix := range n.indexes {
		total += ix.Len()
	}
	return total
}

// Insert adds an object's motion along the given route: m.Y0 is the arc
// length at time m.T0 and m.V the along-route speed. Objects must update
// when they reach either end of the route (§4.1 keeps objects on their
// route at intersections unless they issue an update).
func (n *Network) Insert(rid RouteID, m dual.Motion) error {
	ix, ok := n.indexes[rid]
	if !ok {
		return fmt.Errorf("route: unknown route %d", rid)
	}
	return ix.Insert(m)
}

// Delete removes a motion previously inserted on the route.
func (n *Network) Delete(rid RouteID, m dual.Motion) error {
	ix, ok := n.indexes[rid]
	if !ok {
		return fmt.Errorf("route: unknown route %d", rid)
	}
	return ix.Delete(m)
}

// Hit is one query result: the object and the route it travels.
type Hit struct {
	OID   dual.OID
	Route RouteID
}

// Query answers the two-dimensional MOR query: report every object that is
// inside rect at some instant in [t1, t2]. The SAM prunes to the routes
// and segments crossing rect; each clipped segment contributes an
// arc-length interval queried on the route's 1-dimensional index.
func (n *Network) Query(rect geom.Rect, t1, t2 float64, emit func(Hit)) error {
	// Collect clipped arc-length intervals per route.
	type span struct{ lo, hi float64 }
	spans := make(map[RouteID][]span)
	err := n.sam.SearchRect(rect, func(it rstar.Item) bool {
		rid := RouteID(it.Val >> 16)
		segIdx := int(it.Val & 0xffff)
		r := n.routes[rid]
		a, b := r.Pts[segIdx], r.Pts[segIdx+1]
		f0, f1, ok := clipSegment(a, b, rect)
		if !ok {
			return true
		}
		segLo := r.cum[segIdx]
		segLen := r.cum[segIdx+1] - segLo
		spans[rid] = append(spans[rid], span{segLo + f0*segLen, segLo + f1*segLen})
		return true
	})
	if err != nil {
		return err
	}
	for rid, ss := range spans {
		ix := n.indexes[rid]
		seen := make(map[dual.OID]struct{})
		for _, s := range ss {
			q := dual.MORQuery{Y1: s.lo, Y2: s.hi, T1: t1, T2: t2}
			err := ix.Query(q, func(id dual.OID) {
				if _, dup := seen[id]; dup {
					return
				}
				seen[id] = struct{}{}
				emit(Hit{OID: id, Route: rid})
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// clipSegment clips segment a-b to rect, returning the parameter range
// [f0, f1] of the overlap (Liang–Barsky), or ok=false when disjoint.
func clipSegment(a, b geom.Point, rect geom.Rect) (f0, f1 float64, ok bool) {
	t0, t1 := 0.0, 1.0
	dx := b.X - a.X
	dy := b.Y - a.Y
	clip := func(p, q float64) bool {
		if math.Abs(p) < geom.Eps {
			return q >= -geom.Eps
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, a.X-rect.MinX) || !clip(dx, rect.MaxX-a.X) ||
		!clip(-dy, a.Y-rect.MinY) || !clip(dy, rect.MaxY-a.Y) {
		return 0, 0, false
	}
	if t0 > t1 {
		return 0, 0, false
	}
	return t0, t1, true
}
