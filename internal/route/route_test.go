package route

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

func newNet(t *testing.T) (*Network, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(1024)
	n, err := NewNetwork(st, Config{VMin: 0.5, VMax: 2, C: 4, Codec: bptree.Wide})
	if err != nil {
		t.Fatal(err)
	}
	return n, st
}

func TestRouteGeometry(t *testing.T) {
	n, _ := newNet(t)
	r, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 3, Y: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Length(); math.Abs(got-11) > 1e-9 {
		t.Fatalf("Length = %v, want 11", got)
	}
	p := r.PointAt(5)
	if math.Abs(p.X-3) > 1e-9 || math.Abs(p.Y-4) > 1e-9 {
		t.Fatalf("PointAt(5) = %+v, want (3,4)", p)
	}
	p = r.PointAt(2.5)
	if math.Abs(p.X-1.5) > 1e-9 || math.Abs(p.Y-2) > 1e-9 {
		t.Fatalf("PointAt(2.5) = %+v", p)
	}
	if got := r.PointAt(-1); got != r.Pts[0] {
		t.Fatalf("PointAt clamps low: %+v", got)
	}
	if got := r.PointAt(99); got != r.Pts[2] {
		t.Fatalf("PointAt clamps high: %+v", got)
	}
}

func TestAddRouteErrors(t *testing.T) {
	n, _ := newNet(t)
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Fatal("single-point route accepted")
	}
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}}); err == nil {
		t.Fatal("zero-length segment accepted")
	}
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}}); err == nil {
		t.Fatal("duplicate route id accepted")
	}
	m := dual.Motion{OID: 1, Y0: 0, T0: 0, V: 1}
	if err := n.Insert(99, m); err == nil {
		t.Fatal("insert on unknown route accepted")
	}
}

// Differential test: a grid-of-highways network with objects vs brute force
// over 2D positions.
func TestNetworkQueryDifferential(t *testing.T) {
	n, _ := newNet(t)
	rng := rand.New(rand.NewSource(91))

	// Three horizontal and two vertical roads plus one diagonal.
	routes := map[RouteID][]geom.Point{
		1: {{X: 0, Y: 100}, {X: 1000, Y: 100}},
		2: {{X: 0, Y: 500}, {X: 1000, Y: 500}},
		3: {{X: 0, Y: 900}, {X: 1000, Y: 900}},
		4: {{X: 200, Y: 0}, {X: 200, Y: 1000}},
		5: {{X: 800, Y: 0}, {X: 800, Y: 1000}},
		6: {{X: 0, Y: 0}, {X: 500, Y: 500}, {X: 1000, Y: 0}},
	}
	for id, pts := range routes {
		if _, err := n.AddRoute(id, pts); err != nil {
			t.Fatal(err)
		}
	}

	type obj struct {
		rid RouteID
		m   dual.Motion
	}
	var objs []obj
	oid := dual.OID(0)
	for rid := RouteID(1); rid <= 6; rid++ {
		r, _ := n.Route(rid)
		for k := 0; k < 120; k++ {
			v := 0.5 + rng.Float64()*1.5
			if rng.Intn(2) == 0 {
				v = -v
			}
			m := dual.Motion{OID: oid, Y0: rng.Float64() * r.Length(), T0: 0, V: v}
			oid++
			if err := n.Insert(rid, m); err != nil {
				t.Fatal(err)
			}
			objs = append(objs, obj{rid, m})
		}
	}
	if n.Len() != len(objs) {
		t.Fatalf("Len = %d want %d", n.Len(), len(objs))
	}

	for trial := 0; trial < 40; trial++ {
		x := rng.Float64() * 900
		y := rng.Float64() * 900
		rect := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*300, MaxY: y + rng.Float64()*300}
		t1 := rng.Float64() * 50
		t2 := t1 + rng.Float64()*100

		// Brute force: sample each object's 2D position densely in time.
		want := map[dual.OID]bool{}
		for _, o := range objs {
			r, _ := n.Route(o.rid)
			for k := 0; k <= 300; k++ {
				tt := t1 + float64(k)/300*(t2-t1)
				s := o.m.At(tt)
				if s < 0 || s > r.Length() {
					continue
				}
				if rect.Contains(r.PointAt(s)) {
					want[o.m.OID] = true
					break
				}
			}
		}
		got := map[dual.OID]bool{}
		if err := n.Query(rect, t1, t2, func(h Hit) { got[h.OID] = true }); err != nil {
			t.Fatal(err)
		}
		// Sampling misses grazing contacts; the index may legitimately
		// report a superset of the sampled answer but never miss one.
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing object %d", trial, id)
			}
		}
		// And anything extra must at least graze the rectangle: verify
		// with a fine analytic check on each extra.
		for id := range got {
			if want[id] {
				continue
			}
			var o obj
			for _, cand := range objs {
				if cand.m.OID == id {
					o = cand
					break
				}
			}
			r, _ := n.Route(o.rid)
			ok := false
			for k := 0; k <= 3000 && !ok; k++ {
				tt := t1 + float64(k)/3000*(t2-t1)
				s := o.m.At(tt)
				if s < 0 || s > r.Length() {
					continue
				}
				p := r.PointAt(s)
				grown := geom.Rect{MinX: rect.MinX - 0.5, MinY: rect.MinY - 0.5, MaxX: rect.MaxX + 0.5, MaxY: rect.MaxY + 0.5}
				if grown.Contains(p) {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("trial %d: spurious object %d on route %d", trial, id, o.rid)
			}
		}
	}
}

func TestNetworkUpdate(t *testing.T) {
	n, _ := newNet(t)
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	m := dual.Motion{OID: 7, Y0: 10, T0: 0, V: 1}
	if err := n.Insert(1, m); err != nil {
		t.Fatal(err)
	}
	// Object at arc 10 moving right: query a window around x=30 at t=20.
	found := 0
	rect := geom.Rect{MinX: 25, MinY: -1, MaxX: 35, MaxY: 1}
	if err := n.Query(rect, 18, 22, func(Hit) { found++ }); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("found %d, want 1", found)
	}
	// Update: reverse direction.
	if err := n.Delete(1, m); err != nil {
		t.Fatal(err)
	}
	m2 := dual.Motion{OID: 7, Y0: 30, T0: 20, V: -1}
	if err := n.Insert(1, m2); err != nil {
		t.Fatal(err)
	}
	found = 0
	if err := n.Query(rect, 38, 42, func(Hit) { found++ }); err != nil {
		t.Fatal(err)
	}
	if found != 0 {
		t.Fatalf("reversed object still found ahead")
	}
	found = 0
	rect2 := geom.Rect{MinX: 5, MinY: -1, MaxX: 15, MaxY: 1}
	if err := n.Query(rect2, 38, 42, func(Hit) { found++ }); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("reversed object not found behind: %d", found)
	}
}

// The SAM must prune: querying a small rectangle must not touch the
// indexes of routes far away.
func TestNetworkPrunesRoutes(t *testing.T) {
	n, st := newNet(t)
	rng := rand.New(rand.NewSource(97))
	for rid := RouteID(0); rid < 40; rid++ {
		y := float64(rid) * 25
		if _, err := n.AddRoute(rid, []geom.Point{{X: 0, Y: y}, {X: 1000, Y: y}}); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 50; k++ {
			v := 0.5 + rng.Float64()
			m := dual.Motion{OID: dual.OID(int(rid)*100 + k), Y0: rng.Float64() * 1000, T0: 0, V: v}
			if err := n.Insert(rid, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := st.PagesInUse()
	before := st.Stats()
	rect := geom.Rect{MinX: 400, MinY: 480, MaxX: 600, MaxY: 530} // touches ~3 routes
	if err := n.Query(rect, 0, 10, func(Hit) {}); err != nil {
		t.Fatal(err)
	}
	reads := st.Stats().Sub(before).Reads
	if reads > int64(total/5) {
		t.Fatalf("query read %d of %d pages — route pruning failed", reads, total)
	}
}

func TestRemoveRoute(t *testing.T) {
	n, _ := newNet(t)
	if _, err := n.AddRoute(1, []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRoute(2, []geom.Point{{X: 0, Y: 50}, {X: 100, Y: 50}}); err != nil {
		t.Fatal(err)
	}
	m := dual.Motion{OID: 1, Y0: 10, T0: 0, V: 1}
	if err := n.Insert(1, m); err != nil {
		t.Fatal(err)
	}
	// A populated route refuses removal.
	if err := n.RemoveRoute(1); err == nil {
		t.Fatal("populated route removed")
	}
	if err := n.Delete(1, m); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveRoute(1); err != nil {
		t.Fatal(err)
	}
	if err := n.RemoveRoute(1); err == nil {
		t.Fatal("double removal accepted")
	}
	// Queries over the removed route's corridor find nothing; route 2
	// still answers.
	m2 := dual.Motion{OID: 2, Y0: 10, T0: 0, V: 1}
	if err := n.Insert(2, m2); err != nil {
		t.Fatal(err)
	}
	hits := 0
	if err := n.Query(geom.Rect{MinX: 0, MinY: -10, MaxX: 100, MaxY: 60}, 0, 5, func(Hit) { hits++ }); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (route 2 only)", hits)
	}
}
