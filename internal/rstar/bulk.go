// Sort-Tile-Recursive bulk load (Leutenegger, Edgington, Lopez, ICDE
// 1997). Where Insert pays an R* ChooseSubtree descent, possible forced
// reinsertion, and a split cascade per item — O(n log_B n) page writes
// for n items — STR sorts the items once into √L vertical slabs by
// x-center, tiles each slab by y-center into runs of one leaf each, and
// repeats the same packing on the node rectangles level by level: exactly
// one sequential page write per node.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// strEnt is one entry being packed: an item (ref = value) at level 0, a
// node (ref = page id) above.
type strEnt struct {
	r   geom.Rect
	ref uint32
}

// BulkLoad replaces the tree's contents with the given items, packed
// bottom-up with STR at the given fill fraction (0 selects 0.9). Group
// sizes are balanced so every node — even a slab tail — meets the R*
// minimum fill, keeping the loaded tree indistinguishable from an
// incrementally grown one to CheckInvariants and to subsequent
// Insert/Delete traffic. On a batching store the whole rebuild commits
// atomically. The input slice is not modified.
func (t *Tree) BulkLoad(items []Item, fill float64) error {
	if fill == 0 {
		fill = 0.9
	}
	if fill <= 0 || fill > 1 {
		return fmt.Errorf("rstar: fill fraction %v outside (0, 1]", fill)
	}
	for _, it := range items {
		if it.Val > math.MaxUint32 {
			return fmt.Errorf("rstar: value %d does not fit in the 32-bit page slot", it.Val)
		}
	}
	per := int(fill * float64(t.maxCap))
	// Balanced packing guarantees groups of at least per/2 entries; per
	// must therefore be at least 2m for packed nodes to satisfy the R*
	// minimum fill m.
	if per < 2*t.minCap {
		per = 2 * t.minCap
	}
	if per > t.maxCap {
		per = t.maxCap
	}
	return pager.RunBatch(t.store, func() error { return t.bulkLoad(items, per) })
}

func (t *Tree) bulkLoad(items []Item, per int) error {
	if err := t.destroy(t.root); err != nil {
		return err
	}
	es := make([]strEnt, len(items))
	for i, it := range items {
		es[i] = strEnt{r: roundRect(it.Rect), ref: uint32(it.Val)}
	}
	level := 0
	for {
		nodes, err := t.strPackLevel(es, level, per)
		if err != nil {
			return err
		}
		if len(nodes) == 1 {
			t.root = pager.PageID(nodes[0].ref)
			t.height = level + 1
			t.size = len(items)
			return nil
		}
		es = nodes
		level++
	}
}

// strPackLevel tiles one level's entries into nodes and returns the node
// entries (MBR + page id) for the level above. A single (possibly empty)
// node is produced for an input that fits one page.
func (t *Tree) strPackLevel(es []strEnt, level, per int) ([]strEnt, error) {
	groups := (len(es) + per - 1) / per
	if groups < 1 {
		groups = 1
	}
	if groups > 1 {
		slabs := int(math.Ceil(math.Sqrt(float64(groups))))
		sort.Slice(es, func(i, j int) bool {
			return es[i].r.MinX+es[i].r.MaxX < es[j].r.MinX+es[j].r.MaxX
		})
		var out []strEnt
		for _, slab := range balancedCuts(es, slabs) {
			sort.Slice(slab, func(i, j int) bool {
				return slab[i].r.MinY+slab[i].r.MaxY < slab[j].r.MinY+slab[j].r.MaxY
			})
			for _, run := range balancedCuts(slab, (len(slab)+per-1)/per) {
				ne, err := t.packNode(run, level)
				if err != nil {
					return nil, err
				}
				out = append(out, ne)
			}
		}
		return out, nil
	}
	ne, err := t.packNode(es, level)
	if err != nil {
		return nil, err
	}
	return []strEnt{ne}, nil
}

// balancedCuts splits es into k contiguous pieces whose sizes differ by
// at most one, so no piece is left pathologically small.
func balancedCuts(es []strEnt, k int) [][]strEnt {
	if k < 1 {
		k = 1
	}
	out := make([][]strEnt, 0, k)
	base, rem := len(es)/k, len(es)%k
	start := 0
	for i := 0; i < k; i++ {
		sz := base
		if i < rem {
			sz++
		}
		out = append(out, es[start:start+sz])
		start += sz
	}
	return out
}

// packNode writes one node holding exactly the given entries.
func (t *Tree) packNode(es []strEnt, level int) (strEnt, error) {
	p, err := t.store.Allocate()
	if err != nil {
		return strEnt{}, err
	}
	n := &node{id: p.ID, level: level}
	for _, e := range es {
		n.add(e.r, e.ref)
	}
	if err := t.writeNode(n); err != nil {
		return strEnt{}, err
	}
	return strEnt{r: n.mbr(), ref: uint32(n.id)}, nil
}

// destroy frees every page of the subtree rooted at id.
func (t *Tree) destroy(id pager.PageID) error {
	n, err := t.readNode(id)
	if err != nil {
		return err
	}
	if n.level > 0 {
		for _, ref := range n.refs {
			if err := t.destroy(pager.PageID(ref)); err != nil {
				return err
			}
		}
	}
	return t.store.Free(id)
}
