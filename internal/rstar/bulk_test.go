package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// collectRect returns the sorted values matching a rectangle query.
func collectRect(t *testing.T, tr *Tree, q geom.Rect) []uint64 {
	t.Helper()
	var got []uint64
	if err := tr.SearchRect(q, func(it Item) bool { got = append(got, it.Val); return true }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	return got
}

// STR bulk load must return exactly the incremental build's answers for
// rectangle and convex-region queries, at every fill factor, and leave a
// structurally valid, mutable tree.
func TestBulkLoadDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{0, 1, 100, 5000} {
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Rect: randRect(rng, 100, 3), Val: uint64(i)}
		}
		inc, _ := newTree(t, 1024)
		for _, it := range items {
			if err := inc.Insert(it); err != nil {
				t.Fatal(err)
			}
		}
		for _, fill := range []float64{0.7, 0.9, 1.0} {
			bulk, _ := newTree(t, 1024)
			if err := bulk.BulkLoad(items, fill); err != nil {
				t.Fatal(err)
			}
			if bulk.Len() != n {
				t.Fatalf("n=%d fill=%v: Len=%d", n, fill, bulk.Len())
			}
			if err := bulk.CheckInvariants(); err != nil {
				t.Fatalf("n=%d fill=%v: %v", n, fill, err)
			}
			for q := 0; q < 50; q++ {
				query := randRect(rng, 100, 15)
				want := collectRect(t, inc, query)
				got := collectRect(t, bulk, query)
				if len(want) != len(got) {
					t.Fatalf("n=%d fill=%v: rect query %d answers, incremental %d", n, fill, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("n=%d fill=%v: rect answers diverge at %d", n, fill, i)
					}
				}
			}
		}
	}
}

// A bulk-loaded tree must accept subsequent inserts and deletes.
func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := make([]Item, 3000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 100, 2), Val: uint64(i)}
	}
	tr, _ := newTree(t, 1024)
	if err := tr.BulkLoad(items, 1.0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Insert(Item{Rect: randRect(rng, 100, 2), Val: uint64(10000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		ok, err := tr.Delete(items[i])
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("bulk-loaded item %d not found for delete", i)
		}
	}
	if tr.Len() != 3000 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// BulkLoad replaces previous contents and reclaims their pages.
func TestBulkLoadReplaces(t *testing.T) {
	st := pager.NewMemStore(1024)
	tr, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(Item{Rect: randRect(rng, 100, 2), Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.BulkLoad([]Item{{Rect: rect(0, 0, 1, 1), Val: 1}}, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 || st.PagesInUse() > 2 {
		t.Fatalf("Len=%d, %d pages in use", tr.Len(), st.PagesInUse())
	}
}

// Bulk construction must cost far fewer page writes than incremental.
func TestBulkLoadIOAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	items := make([]Item, 20000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 1000, 3), Val: uint64(i)}
	}
	incStore := pager.NewMemStore(4096)
	inc, _ := New(incStore, Config{})
	for _, it := range items {
		if err := inc.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	bulkStore := pager.NewMemStore(4096)
	bulk, _ := New(bulkStore, Config{})
	if err := bulk.BulkLoad(items, 0.9); err != nil {
		t.Fatal(err)
	}
	incIOs := incStore.Stats().IOs()
	bulkIOs := bulkStore.Stats().IOs()
	if bulkIOs*5 > incIOs {
		t.Fatalf("bulk load cost %d I/Os, incremental %d — want >= 5x reduction", bulkIOs, incIOs)
	}
}
