package rstar

import (
	"errors"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// TestRStarSurfacesStorageFaults: every storage failure must come back as
// an error from the R*-tree's API, never a panic — including through the
// forced-reinsert and split paths that fire under load.
func TestRStarSurfacesStorageFaults(t *testing.T) {
	items := make([]Item, 250)
	for i := range items {
		x := float64((i * 37) % 100)
		y := float64((i * 61) % 100)
		items[i] = Item{Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 2, MaxY: y + 2}, Val: uint64(i)}
	}
	for _, cfg := range []pager.FaultConfig{
		{Seed: 1, Read: pager.OpFaults{FailEvery: 7}},
		{Seed: 2, Write: pager.OpFaults{FailEvery: 7}},
		{Seed: 3, Alloc: pager.OpFaults{FailEvery: 3}},
		{Seed: 4, Free: pager.OpFaults{FailEvery: 2}},
	} {
		faulty := pager.NewFaultStore(pager.NewMemStore(256), cfg)
		tr, err := New(faulty, Config{})
		if err != nil {
			if !errors.Is(err, pager.ErrInjected) {
				t.Fatalf("cfg %+v: constructor error outside taxonomy: %v", cfg, err)
			}
			continue
		}
		var opErrs int
		check := func(err error, op string) {
			if err == nil {
				return
			}
			if !errors.Is(err, pager.ErrInjected) && !errors.Is(err, pager.ErrPageNotFound) {
				t.Fatalf("cfg %+v: %s error outside taxonomy: %v", cfg, op, err)
			}
			opErrs++
		}
		for _, it := range items {
			check(tr.Insert(it), "insert")
		}
		check(tr.SearchRect(geom.Rect{MinX: 10, MinY: 10, MaxX: 70, MaxY: 70}, func(Item) bool { return true }), "search")
		for _, it := range items[:60] {
			_, err := tr.Delete(it)
			check(err, "delete")
		}
		if faulty.Counters().Total() > 0 && opErrs == 0 {
			t.Fatalf("cfg %+v: faults injected but no operation reported one", cfg)
		}
	}
}
