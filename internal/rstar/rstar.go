// Package rstar implements a disk-paged R*-tree (Beckmann, Kriegel,
// Schneider, Seeger, SIGMOD 1990): ChooseSubtree with overlap-enlargement
// at the leaf level, margin-driven split-axis selection, and forced
// reinsertion on first overflow per level.
//
// It is the "traditional indexing" baseline of the paper's §3.1/§5
// experiments, where each mobile object's trajectory is stored as a line
// segment approximated by its minimum bounding rectangle. Leaf entries are
// four 4-byte coordinates plus a 4-byte pointer — 20 bytes — so a 4096-byte
// page holds B = 204 entries exactly as computed in §5.
//
// Besides rectangle search it supports linear-constraint (simplex) search
// in the style of Goldstein et al. (PODS 1997): a subtree is pruned when
// its rectangle misses the convex query region and reported wholesale when
// contained.
package rstar

import (
	"fmt"
	"math"
	"sort"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

// Item is one indexed object: a rectangle and an opaque 32-bit reference
// (stored on page as 4 bytes, mirroring the paper's record layout).
type Item struct {
	Rect geom.Rect
	Val  uint64 // must fit in 32 bits
}

// Config tunes the tree.
type Config struct {
	// MinFill is the minimum node fill fraction m/M; the R*-paper
	// recommends 0.4. Zero selects 0.4.
	MinFill float64
	// ReinsertFrac is the fraction p of entries removed on forced
	// reinsert; the R*-paper recommends 0.3. Zero selects 0.3.
	ReinsertFrac float64
}

// Tree is an R*-tree stored in a pager.Store.
type Tree struct {
	store  pager.Store
	root   pager.PageID
	height int // 1 = root is leaf
	size   int
	maxCap int
	minCap int
	pReins int
}

// node is the in-memory image of one page. Level 0 is a leaf; leaves hold
// items (child == val), internal nodes hold child page ids.
type node struct {
	id    pager.PageID
	level int
	rects []geom.Rect
	refs  []uint32 // child page id or item value
}

const headerSize = 8 // type/level byte, pad, count uint16, pad uint32
const entrySize = 20 // four float32 coords + uint32 ref

// New creates an empty tree.
func New(store pager.Store, cfg Config) (*Tree, error) {
	if cfg.MinFill == 0 {
		cfg.MinFill = 0.4
	}
	if cfg.ReinsertFrac == 0 {
		cfg.ReinsertFrac = 0.3
	}
	maxCap := (store.PageSize() - headerSize) / entrySize
	if maxCap < 8 {
		return nil, fmt.Errorf("rstar: page size %d too small", store.PageSize())
	}
	t := &Tree{
		store:  store,
		maxCap: maxCap,
		minCap: int(cfg.MinFill * float64(maxCap)),
		pReins: int(cfg.ReinsertFrac * float64(maxCap)),
	}
	if t.minCap < 1 {
		t.minCap = 1
	}
	if t.pReins < 1 {
		t.pReins = 1
	}
	p, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	root := &node{id: p.ID, level: 0}
	if err := t.writeNode(root); err != nil {
		return nil, err
	}
	t.root = p.ID
	t.height = 1
	return t, nil
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height (1 = root is a leaf).
func (t *Tree) Height() int { return t.height }

// Capacity returns the page capacity B for entries.
func (t *Tree) Capacity() int { return t.maxCap }

// ---------------------------------------------------------------------------
// Page serialization
// ---------------------------------------------------------------------------

func put32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func get32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putf32(b []byte, f float64) { put32(b, math.Float32bits(float32(f))) }
func getf32(b []byte) float64    { return float64(math.Float32frombits(get32(b))) }

func (t *Tree) writeNode(n *node) error {
	pb := pager.GetPageBuf(t.store.PageSize())
	data := pb.B
	data[0] = byte(n.level)
	data[2] = byte(len(n.rects))
	data[3] = byte(len(n.rects) >> 8)
	off := headerSize
	for i, r := range n.rects {
		putf32(data[off:], r.MinX)
		putf32(data[off+4:], r.MinY)
		putf32(data[off+8:], r.MaxX)
		putf32(data[off+12:], r.MaxY)
		put32(data[off+16:], n.refs[i])
		off += entrySize
	}
	err := t.store.Write(&pager.Page{ID: n.id, Data: data})
	pb.Release()
	return err
}

func (t *Tree) readNode(id pager.PageID) (*node, error) {
	p, err := t.store.Read(id)
	if err != nil {
		return nil, err
	}
	d := p.Data
	n := &node{id: id, level: int(d[0])}
	count := int(d[2]) | int(d[3])<<8
	n.rects = make([]geom.Rect, count)
	n.refs = make([]uint32, count)
	off := headerSize
	for i := 0; i < count; i++ {
		n.rects[i] = geom.Rect{
			MinX: getf32(d[off:]), MinY: getf32(d[off+4:]),
			MaxX: getf32(d[off+8:]), MaxY: getf32(d[off+12:]),
		}
		n.refs[i] = get32(d[off+16:])
		off += entrySize
	}
	return n, nil
}

func (n *node) mbr() geom.Rect {
	r := geom.EmptyRect()
	for _, e := range n.rects {
		r = r.Union(e)
	}
	return r
}

func (n *node) add(r geom.Rect, ref uint32) {
	n.rects = append(n.rects, r)
	n.refs = append(n.refs, ref)
}

func (n *node) remove(i int) {
	n.rects = append(n.rects[:i], n.rects[i+1:]...)
	n.refs = append(n.refs[:i], n.refs[i+1:]...)
}

// roundRect snaps r to the float32 grid used on page (the paper stores
// 4-byte coordinates); Insert applies it so Delete and Search compare
// against exactly the values a page round-trip produces.
func roundRect(r geom.Rect) geom.Rect {
	return geom.Rect{
		MinX: float64(float32(r.MinX)), MinY: float64(float32(r.MinY)),
		MaxX: float64(float32(r.MaxX)), MaxY: float64(float32(r.MaxY)),
	}
}

// ---------------------------------------------------------------------------
// Insertion
// ---------------------------------------------------------------------------

// Insert adds an item to the tree.
func (t *Tree) Insert(it Item) error {
	if it.Val > math.MaxUint32 {
		return fmt.Errorf("rstar: value %d does not fit in the 32-bit page slot", it.Val)
	}
	// One forced reinsert permitted per level per top-level insertion.
	reinserted := make(map[int]bool)
	if err := t.insert(it.Rect, uint32(it.Val), 0, reinserted); err != nil {
		return err
	}
	t.size++
	return nil
}

// insert places (r, ref) at the target level.
func (t *Tree) insert(r geom.Rect, ref uint32, level int, reinserted map[int]bool) error {
	r = roundRect(r)
	path, err := t.choosePath(r, level)
	if err != nil {
		return err
	}
	n := path[len(path)-1].n
	n.add(r, ref)
	return t.propagate(path, reinserted)
}

type pathEl struct {
	n   *node
	idx int // index of this node's entry within its parent
}

// choosePath descends from the root to the node at targetLevel using the
// R* ChooseSubtree criteria, returning the visited path.
func (t *Tree) choosePath(r geom.Rect, targetLevel int) ([]pathEl, error) {
	var path []pathEl
	id := t.root
	idxInParent := -1
	for {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		path = append(path, pathEl{n: n, idx: idxInParent})
		if n.level == targetLevel {
			return path, nil
		}
		ci := t.chooseSubtree(n, r)
		idxInParent = ci
		id = pager.PageID(n.refs[ci])
	}
}

// overlapFast returns the overlap area of two rectangles without the
// generality (empty-rect handling, function-call overhead) of
// geom.Rect.OverlapArea — ChooseSubtree evaluates it O(M·p) times per
// insertion and dominates the R*-tree's CPU profile.
func overlapFast(a, b geom.Rect) float64 {
	minX := a.MinX
	if b.MinX > minX {
		minX = b.MinX
	}
	maxX := a.MaxX
	if b.MaxX < maxX {
		maxX = b.MaxX
	}
	if maxX <= minX {
		return 0
	}
	minY := a.MinY
	if b.MinY > minY {
		minY = b.MinY
	}
	maxY := a.MaxY
	if b.MaxY < maxY {
		maxY = b.MaxY
	}
	if maxY <= minY {
		return 0
	}
	return (maxX - minX) * (maxY - minY)
}

// chooseSubtree picks the child of n to descend into for rectangle r.
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	if n.level == 1 {
		// Children are leaves: minimize overlap enlargement, then area
		// enlargement, then area. Computing overlap enlargement for every
		// child is O(M²); following the R*-paper's own optimization, only
		// the p=32 children with least area enlargement are examined.
		const p = 32
		cand := make([]int, len(n.rects))
		for i := range cand {
			cand[i] = i
		}
		if len(cand) > p {
			deltas := make([]float64, len(n.rects))
			for i, cr := range n.rects {
				deltas[i] = cr.Union(r).Area() - cr.Area()
			}
			sort.Slice(cand, func(a, b int) bool { return deltas[cand[a]] < deltas[cand[b]] })
			cand = cand[:p]
		}
		best, bestOverlapDelta, bestAreaDelta, bestArea := -1, math.Inf(1), math.Inf(1), math.Inf(1)
		for _, i := range cand {
			cr := n.rects[i]
			enlarged := cr.Union(r)
			var ovBefore, ovAfter float64
			for j, or := range n.rects {
				if j == i {
					continue
				}
				ovBefore += overlapFast(cr, or)
				ovAfter += overlapFast(enlarged, or)
			}
			od := ovAfter - ovBefore
			ad := enlarged.Area() - cr.Area()
			a := cr.Area()
			if od < bestOverlapDelta-geom.Eps ||
				(math.Abs(od-bestOverlapDelta) <= geom.Eps && ad < bestAreaDelta-geom.Eps) ||
				(math.Abs(od-bestOverlapDelta) <= geom.Eps && math.Abs(ad-bestAreaDelta) <= geom.Eps && a < bestArea) {
				best, bestOverlapDelta, bestAreaDelta, bestArea = i, od, ad, a
			}
		}
		return best
	}
	// Children are internal: minimize area enlargement, then area.
	best, bestAreaDelta, bestArea := -1, math.Inf(1), math.Inf(1)
	for i, cr := range n.rects {
		ad := cr.Union(r).Area() - cr.Area()
		a := cr.Area()
		if ad < bestAreaDelta-geom.Eps ||
			(math.Abs(ad-bestAreaDelta) <= geom.Eps && a < bestArea) {
			best, bestAreaDelta, bestArea = i, ad, a
		}
	}
	return best
}

// propagate writes the modified tail node of path and handles overflow,
// updating ancestor rectangles on the way up.
func (t *Tree) propagate(path []pathEl, reinserted map[int]bool) error {
	for depth := len(path) - 1; depth >= 0; depth-- {
		n := path[depth].n
		if len(n.rects) <= t.maxCap {
			if err := t.writeNode(n); err != nil {
				return err
			}
			continue
		}
		isRoot := depth == 0
		if !isRoot && !reinserted[n.level] {
			reinserted[n.level] = true
			if err := t.forcedReinsert(path[:depth+1], reinserted); err != nil {
				return err
			}
			// forcedReinsert finished the whole propagation.
			return nil
		}
		// Split.
		left, right := t.split(n)
		path[depth].n = left // ancestors must see the shrunken node
		if err := t.writeNode(left); err != nil {
			return err
		}
		rp, err := t.store.Allocate()
		if err != nil {
			return err
		}
		right.id = rp.ID
		if err := t.writeNode(right); err != nil {
			return err
		}
		if isRoot {
			np, err := t.store.Allocate()
			if err != nil {
				return err
			}
			newRoot := &node{
				id:    np.ID,
				level: n.level + 1,
				rects: []geom.Rect{left.mbr(), right.mbr()},
				refs:  []uint32{uint32(left.id), uint32(right.id)},
			}
			if err := t.writeNode(newRoot); err != nil {
				return err
			}
			t.root = newRoot.id
			t.height++
			return nil
		}
		parent := path[depth-1].n
		parent.rects[path[depth].idx] = left.mbr()
		parent.refs[path[depth].idx] = uint32(left.id)
		parent.add(right.mbr(), uint32(right.id))
		// Loop continues: parent may now overflow.
	}
	// Update ancestor MBRs (the loop above wrote nodes but parent rects of
	// non-overflowing nodes still need refresh).
	return t.refreshPathRects(path)
}

// refreshPathRects recomputes each parent entry rect along the path.
func (t *Tree) refreshPathRects(path []pathEl) error {
	for depth := len(path) - 1; depth >= 1; depth-- {
		child := path[depth].n
		parent := path[depth-1].n
		m := child.mbr()
		if parent.rects[path[depth].idx] != m {
			parent.rects[path[depth].idx] = m
			if err := t.writeNode(parent); err != nil {
				return err
			}
		}
	}
	return nil
}

// forcedReinsert removes the p entries of the overflowing tail node whose
// centers are farthest from the node's center, shrinks the node, fixes
// ancestor rects, and reinserts the removed entries (closest first).
func (t *Tree) forcedReinsert(path []pathEl, reinserted map[int]bool) error {
	n := path[len(path)-1].n
	center := n.mbr().Center()
	type de struct {
		r    geom.Rect
		ref  uint32
		dist float64
	}
	all := make([]de, len(n.rects))
	for i := range n.rects {
		c := n.rects[i].Center()
		dx, dy := c.X-center.X, c.Y-center.Y
		all[i] = de{n.rects[i], n.refs[i], dx*dx + dy*dy}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].dist < all[j].dist })
	keep := all[:len(all)-t.pReins]
	out := all[len(all)-t.pReins:]
	n.rects = n.rects[:0]
	n.refs = n.refs[:0]
	for _, e := range keep {
		n.add(e.r, e.ref)
	}
	if err := t.writeNode(n); err != nil {
		return err
	}
	if err := t.refreshPathRects(path); err != nil {
		return err
	}
	// Close reinsert: nearest first.
	for _, e := range out {
		if err := t.insert(e.r, e.ref, n.level, reinserted); err != nil {
			return err
		}
	}
	return nil
}

// split performs the R* topological split of an overflowing node: pick the
// axis minimizing the margin sum over all legal distributions, then the
// distribution with minimum overlap (ties: minimum total area). The left
// half reuses n's page.
func (t *Tree) split(n *node) (left, right *node) {
	type ent struct {
		r   geom.Rect
		ref uint32
	}
	es := make([]ent, len(n.rects))
	for i := range n.rects {
		es[i] = ent{n.rects[i], n.refs[i]}
	}
	m := t.minCap
	M := len(es)

	bestAxisMargin := math.Inf(1)
	var bestSorted []ent
	var bestSplitAt int

	for axis := 0; axis < 2; axis++ {
		for _, byUpper := range []bool{false, true} {
			sorted := make([]ent, len(es))
			copy(sorted, es)
			sort.Slice(sorted, func(i, j int) bool {
				a, b := sorted[i].r, sorted[j].r
				switch {
				case axis == 0 && !byUpper:
					if a.MinX != b.MinX {
						return a.MinX < b.MinX
					}
					return a.MaxX < b.MaxX
				case axis == 0:
					return a.MaxX < b.MaxX
				case !byUpper:
					if a.MinY != b.MinY {
						return a.MinY < b.MinY
					}
					return a.MaxY < b.MaxY
				default:
					return a.MaxY < b.MaxY
				}
			})
			// Prefix/suffix MBRs for O(M) distribution evaluation.
			pre := make([]geom.Rect, len(sorted)+1)
			suf := make([]geom.Rect, len(sorted)+1)
			pre[0] = geom.EmptyRect()
			for i := range sorted {
				pre[i+1] = pre[i].Union(sorted[i].r)
			}
			suf[len(sorted)] = geom.EmptyRect()
			for i := len(sorted) - 1; i >= 0; i-- {
				suf[i] = suf[i+1].Union(sorted[i].r)
			}
			marginSum := 0.0
			localBestOverlap, localBestArea, localSplit := math.Inf(1), math.Inf(1), -1
			for k := m; k <= M-m; k++ {
				l, r := pre[k], suf[k]
				marginSum += l.Margin() + r.Margin()
				ov := l.OverlapArea(r)
				ar := l.Area() + r.Area()
				if ov < localBestOverlap-geom.Eps ||
					(math.Abs(ov-localBestOverlap) <= geom.Eps && ar < localBestArea) {
					localBestOverlap, localBestArea, localSplit = ov, ar, k
				}
			}
			if marginSum < bestAxisMargin {
				bestAxisMargin = marginSum
				bestSorted = sorted
				bestSplitAt = localSplit
			}
		}
	}

	left = &node{id: n.id, level: n.level}
	right = &node{level: n.level}
	for i, e := range bestSorted {
		if i < bestSplitAt {
			left.add(e.r, e.ref)
		} else {
			right.add(e.r, e.ref)
		}
	}
	return left, right
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

// SearchRect calls fn for every item whose rectangle intersects q; fn
// returning false stops the search.
func (t *Tree) SearchRect(q geom.Rect, fn func(Item) bool) error {
	_, err := t.searchRect(t.root, q, fn)
	return err
}

func (t *Tree) searchRect(id pager.PageID, q geom.Rect, fn func(Item) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for i, r := range n.rects {
		if !r.Intersects(q) {
			continue
		}
		if n.level == 0 {
			if !fn(Item{Rect: r, Val: uint64(n.refs[i])}) {
				return false, nil
			}
			continue
		}
		cont, err := t.searchRect(pager.PageID(n.refs[i]), q, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// SearchRegion calls fn for every item whose rectangle intersects the
// convex region (Goldstein et al. linear-constraint search). Subtrees whose
// rectangle is contained in the region are reported without further
// geometric tests.
func (t *Tree) SearchRegion(reg geom.ConvexRegion, fn func(Item) bool) error {
	_, err := t.searchRegion(t.root, reg, fn)
	return err
}

func (t *Tree) searchRegion(id pager.PageID, reg geom.ConvexRegion, fn func(Item) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for i, r := range n.rects {
		switch reg.ClassifyRect(r) {
		case geom.Outside:
			continue
		case geom.Inside:
			if n.level == 0 {
				if !fn(Item{Rect: r, Val: uint64(n.refs[i])}) {
					return false, nil
				}
			} else {
				cont, err := t.reportSubtree(pager.PageID(n.refs[i]), fn)
				if err != nil || !cont {
					return cont, err
				}
			}
		case geom.Partial:
			if n.level == 0 {
				if !fn(Item{Rect: r, Val: uint64(n.refs[i])}) {
					return false, nil
				}
			} else {
				cont, err := t.searchRegion(pager.PageID(n.refs[i]), reg, fn)
				if err != nil || !cont {
					return cont, err
				}
			}
		}
	}
	return true, nil
}

func (t *Tree) reportSubtree(id pager.PageID, fn func(Item) bool) (bool, error) {
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for i, r := range n.rects {
		if n.level == 0 {
			if !fn(Item{Rect: r, Val: uint64(n.refs[i])}) {
				return false, nil
			}
			continue
		}
		cont, err := t.reportSubtree(pager.PageID(n.refs[i]), fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// ---------------------------------------------------------------------------
// Deletion
// ---------------------------------------------------------------------------

// Delete removes one item matching it exactly (rectangle after float32
// rounding, and value). It returns pager.ErrPageNotFound-free semantics:
// a boolean found result.
func (t *Tree) Delete(it Item) (bool, error) {
	r := roundRect(it.Rect)
	path, idx, err := t.findLeaf(t.root, nil, r, uint32(it.Val))
	if err != nil {
		return false, err
	}
	if path == nil {
		return false, nil
	}
	leaf := path[len(path)-1].n
	leaf.remove(idx)
	t.size--
	// Condense: collect orphaned entries from underfull nodes bottom-up.
	type orphan struct {
		r     geom.Rect
		ref   uint32
		level int
	}
	var orphans []orphan
	for depth := len(path) - 1; depth >= 1; depth-- {
		n := path[depth].n
		parent := path[depth-1].n
		if len(n.rects) < t.minCap {
			for i := range n.rects {
				orphans = append(orphans, orphan{n.rects[i], n.refs[i], n.level})
			}
			parent.remove(path[depth].idx)
			// Fix sibling path indexes shifted by the removal.
			if depth < len(path) {
				// Only the current chain matters; deeper entries already
				// processed. Nothing else references parent indexes.
			}
			if err := t.store.Free(n.id); err != nil {
				return false, err
			}
		} else {
			if err := t.writeNode(n); err != nil {
				return false, err
			}
			parent.rects[path[depth].idx] = n.mbr()
		}
	}
	if err := t.writeNode(path[0].n); err != nil {
		return false, err
	}
	// Shrink the root if it is internal with a single child.
	for {
		rn, err := t.readNode(t.root)
		if err != nil {
			return false, err
		}
		if rn.level == 0 || len(rn.rects) > 1 {
			break
		}
		old := t.root
		t.root = pager.PageID(rn.refs[0])
		t.height--
		if err := t.store.Free(old); err != nil {
			return false, err
		}
	}
	// Reinsert orphans at their original levels.
	for _, o := range orphans {
		reinserted := make(map[int]bool)
		if err := t.insert(o.r, o.ref, o.level, reinserted); err != nil {
			return false, err
		}
	}
	return true, nil
}

// findLeaf locates the leaf containing (r, ref), returning the path and
// entry index, or a nil path when absent.
func (t *Tree) findLeaf(id pager.PageID, path []pathEl, r geom.Rect, ref uint32) ([]pathEl, int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, err
	}
	if n.level == 0 {
		for i := range n.rects {
			if n.refs[i] == ref && rectsEqual(n.rects[i], r) {
				return append(path, pathEl{n: n}), i, nil
			}
		}
		return nil, 0, nil
	}
	for i := range n.rects {
		if !n.rects[i].ContainsRect(r) {
			continue
		}
		got, idx, err := t.findLeaf(pager.PageID(n.refs[i]), append(path, pathEl{n: n}), r, ref)
		if err != nil {
			return nil, 0, err
		}
		if got != nil {
			// Record which child we descended into for condense.
			got[len(path)+1].idx = i
			return got, idx, nil
		}
	}
	return nil, 0, nil
}

func rectsEqual(a, b geom.Rect) bool {
	return math.Abs(a.MinX-b.MinX) <= geom.Eps && math.Abs(a.MinY-b.MinY) <= geom.Eps &&
		math.Abs(a.MaxX-b.MaxX) <= geom.Eps && math.Abs(a.MaxY-b.MaxY) <= geom.Eps
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

// CheckInvariants verifies structure: levels decrease, parent rects contain
// children, entry counts within bounds, and the reachable item count equals
// Len.
func (t *Tree) CheckInvariants() error {
	count, err := t.checkNode(t.root, t.height-1, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: size %d but %d items reachable", t.size, count)
	}
	return nil
}

func (t *Tree) checkNode(id pager.PageID, wantLevel int, isRoot bool) (int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.level != wantLevel {
		return 0, fmt.Errorf("rstar: node %d at level %d, want %d", id, n.level, wantLevel)
	}
	if len(n.rects) > t.maxCap {
		return 0, fmt.Errorf("rstar: node %d overfull (%d > %d)", id, len(n.rects), t.maxCap)
	}
	if !isRoot && len(n.rects) < t.minCap {
		return 0, fmt.Errorf("rstar: node %d underfull (%d < %d)", id, len(n.rects), t.minCap)
	}
	if n.level == 0 {
		return len(n.rects), nil
	}
	total := 0
	for i := range n.rects {
		child, err := t.readNode(pager.PageID(n.refs[i]))
		if err != nil {
			return 0, err
		}
		if !n.rects[i].ContainsRect(child.mbr()) {
			return 0, fmt.Errorf("rstar: node %d entry %d rect %v does not contain child mbr %v",
				id, i, n.rects[i], child.mbr())
		}
		c, err := t.checkNode(pager.PageID(n.refs[i]), wantLevel-1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
