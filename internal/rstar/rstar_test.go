package rstar

import (
	"math/rand"
	"testing"

	"mobidx/internal/geom"
	"mobidx/internal/pager"
)

func newTree(t *testing.T, pageSize int) (*Tree, *pager.MemStore) {
	t.Helper()
	st := pager.NewMemStore(pageSize)
	tr, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tr, st
}

func rect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

func randRect(rng *rand.Rand, world, maxSide float64) geom.Rect {
	x := rng.Float64() * world
	y := rng.Float64() * world
	return geom.Rect{
		MinX: x, MinY: y,
		MaxX: x + rng.Float64()*maxSide, MaxY: y + rng.Float64()*maxSide,
	}
}

func TestPaperCapacity(t *testing.T) {
	tr, _ := newTree(t, 4096)
	// 20-byte entries: the paper's B = 204.
	if tr.Capacity() != 204 {
		t.Fatalf("capacity = %d, want 204", tr.Capacity())
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, 512)
	for i := 0; i < 100; i++ {
		r := geom.Rect{MinX: float64(i), MinY: 0, MaxX: float64(i) + 0.5, MaxY: 1}
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	_ = tr.SearchRect(geom.Rect{MinX: 10, MinY: 0, MaxX: 12, MaxY: 2}, func(it Item) bool {
		got = append(got, it.Val)
		return true
	})
	if len(got) != 3 { // items 10, 11, 12
		t.Fatalf("got %v", got)
	}
}

func TestValOverflow(t *testing.T) {
	tr, _ := newTree(t, 512)
	err := tr.Insert(Item{Rect: rect(0, 0, 1, 1), Val: 1 << 40})
	if err == nil {
		t.Fatal("expected error for 40-bit value")
	}
}

// Differential test: random inserts/deletes/searches against brute force.
func TestRandomOpsAgainstBruteForce(t *testing.T) {
	for _, pageSize := range []int{256, 512} {
		tr, _ := newTree(t, pageSize)
		rng := rand.New(rand.NewSource(17))
		type rec struct {
			r geom.Rect
			v uint64
		}
		var ref []rec
		nextVal := uint64(0)
		for op := 0; op < 4000; op++ {
			switch {
			case len(ref) == 0 || rng.Float64() < 0.65:
				r := randRect(rng, 1000, 50)
				v := nextVal
				nextVal++
				if err := tr.Insert(Item{Rect: r, Val: v}); err != nil {
					t.Fatal(err)
				}
				// Mirror the float32 rounding the tree applies.
				ref = append(ref, rec{roundRect(r), v})
			default:
				i := rng.Intn(len(ref))
				found, err := tr.Delete(Item{Rect: ref[i].r, Val: ref[i].v})
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				if !found {
					t.Fatalf("op %d: delete did not find %+v", op, ref[i])
				}
				ref = append(ref[:i], ref[i+1:]...)
			}
			if op%400 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			q := randRect(rng, 1000, 200)
			want := map[uint64]bool{}
			for _, e := range ref {
				if e.r.Intersects(q) {
					want[e.v] = true
				}
			}
			got := map[uint64]bool{}
			_ = tr.SearchRect(q, func(it Item) bool { got[it.Val] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("search: got %d, want %d (page %d)", len(got), len(want), pageSize)
			}
			for v := range want {
				if !got[v] {
					t.Fatalf("search missing %d", v)
				}
			}
		}
	}
}

func TestSearchRegionAgainstBruteForce(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(29))
	type rec struct {
		r geom.Rect
		v uint64
	}
	var ref []rec
	for i := 0; i < 3000; i++ {
		r := randRect(rng, 1000, 30)
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, rec{roundRect(r), uint64(i)})
	}
	for trial := 0; trial < 40; trial++ {
		// Random wedge-like region: a bounding box and two diagonal cuts.
		bb := randRect(rng, 1000, 400)
		reg := geom.NewRegion(
			geom.Constraint{A: -1, B: 0, C: -bb.MinX},
			geom.Constraint{A: 1, B: 0, C: bb.MaxX},
			geom.Constraint{A: 0, B: -1, C: -bb.MinY},
			geom.Constraint{A: 0, B: 1, C: bb.MaxY},
			geom.Constraint{A: rng.Float64()*2 - 1, B: rng.Float64()*2 - 1, C: rng.Float64() * 1000},
		)
		want := map[uint64]bool{}
		for _, e := range ref {
			if reg.IntersectsRect(e.r) {
				want[e.v] = true
			}
		}
		got := map[uint64]bool{}
		_ = tr.SearchRegion(reg, func(it Item) bool { got[it.Val] = true; return true })
		for v := range want {
			if !got[v] {
				t.Fatalf("region search missing %d", v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("region search: got %d, want %d", len(got), len(want))
		}
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr, _ := newTree(t, 512)
	_ = tr.Insert(Item{Rect: rect(0, 0, 1, 1), Val: 1})
	found, err := tr.Delete(Item{Rect: rect(5, 5, 6, 6), Val: 1})
	if err != nil || found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	found, err = tr.Delete(Item{Rect: rect(0, 0, 1, 1), Val: 2})
	if err != nil || found {
		t.Fatalf("same rect wrong val: found=%v err=%v", found, err)
	}
	if tr.Len() != 1 {
		t.Fatal("Len changed by failed delete")
	}
}

func TestDrainToEmpty(t *testing.T) {
	tr, st := newTree(t, 256)
	rng := rand.New(rand.NewSource(31))
	type rec struct {
		r geom.Rect
		v uint64
	}
	var ref []rec
	for i := 0; i < 1500; i++ {
		r := randRect(rng, 500, 20)
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		ref = append(ref, rec{roundRect(r), uint64(i)})
	}
	for i, e := range ref {
		found, err := tr.Delete(Item{Rect: e.r, Val: e.v})
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !found {
			t.Fatalf("delete %d: not found", i)
		}
		if i%250 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after delete %d: %v", i, err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after drain", tr.Len())
	}
	if st.PagesInUse() != 1 {
		t.Fatalf("pages after drain = %d, want 1 (root)", st.PagesInUse())
	}
}

func TestDuplicateItems(t *testing.T) {
	tr, _ := newTree(t, 256)
	r := rect(10, 10, 20, 20)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	_ = tr.SearchRect(r, func(Item) bool { n++; return true })
	if n != 50 {
		t.Fatalf("found %d duplicates, want 50", n)
	}
	for i := 0; i < 50; i++ {
		found, err := tr.Delete(Item{Rect: r, Val: uint64(i)})
		if err != nil || !found {
			t.Fatalf("delete dup %d: found=%v err=%v", i, found, err)
		}
	}
}

// Search must honor early termination.
func TestSearchEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 500; i++ {
		_ = tr.Insert(Item{Rect: rect(0, 0, 1, 1), Val: uint64(i)})
	}
	n := 0
	_ = tr.SearchRect(rect(0, 0, 1, 1), func(Item) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

// Point (degenerate) rectangles must work: the dual indexes store points.
func TestPointItems(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(41))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		r := geom.Rect{MinX: pts[i].X, MinY: pts[i].Y, MaxX: pts[i].X, MaxY: pts[i].Y}
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.Rect{MinX: 25, MinY: 25, MaxX: 75, MaxY: 75}
	want := 0
	for _, p := range pts {
		rp := geom.Point{X: float64(float32(p.X)), Y: float64(float32(p.Y))}
		if q.Contains(rp) {
			want++
		}
	}
	got := 0
	_ = tr.SearchRect(q, func(Item) bool { got++; return true })
	if got != want {
		t.Fatalf("point query: got %d, want %d", got, want)
	}
}

// The R*-tree must cluster well enough that query I/O is far below a scan.
func TestQueryIOBetterThanScan(t *testing.T) {
	st := pager.NewMemStore(4096)
	tr, err := New(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	const N = 50000
	for i := 0; i < N; i++ {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1}
		if err := tr.Insert(Item{Rect: r, Val: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	totalPages := st.PagesInUse()
	before := st.Stats()
	found := 0
	_ = tr.SearchRect(geom.Rect{MinX: 100, MinY: 100, MaxX: 130, MaxY: 130}, func(Item) bool {
		found++
		return true
	})
	reads := st.Stats().Sub(before).Reads
	if reads > int64(totalPages/4) {
		t.Fatalf("query read %d of %d pages — no pruning?", reads, totalPages)
	}
	if found == 0 {
		t.Fatal("query found nothing")
	}
}
