package chaostest

import (
	"context"
	"sync"
	"testing"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
	"mobidx/internal/shard"
)

func fastRetry() shard.Policy {
	return shard.Policy{
		MaxAttempts: 4,
		Backoff:     func(int) time.Duration { return 100 * time.Microsecond },
		Jitter:      0.5,
		Seed:        7,
	}
}

// scenarios is the fault × policy grid. Each entry is swept over every
// topology in Topologies.
func scenarios() []Scenario {
	victims := func(n int) []int {
		if n >= 4 {
			return []int{0, n / 2}
		}
		return []int{0}
	}
	return []Scenario{
		{
			// No faults: the pure sharding contract — every topology,
			// every worker count, byte-identical to the oracle.
			Name: "clean",
		},
		{
			// A bounded storm of transient read faults on every shard is
			// fully absorbed by the retry budget: no query ever degrades.
			Name:   "transient-storm",
			Policy: fastRetry(),
			Fault: func(n, id int) (pager.FaultConfig, bool) {
				return pager.FaultConfig{
					Seed:      int64(1000 + id),
					Read:      pager.OpFaults{FailEvery: 4},
					Transient: true,
					MaxFaults: 2,
				}, true
			},
		},
		{
			// Storage under one or two shards dies outright. Queries
			// degrade to the exact healthy union, the breaker stops
			// hammering the corpses, and when the outage ends the answers
			// converge back to byte-identical.
			Name: "dead-shard",
			Policy: shard.Policy{
				MaxAttempts:  2,
				BreakAfter:   2,
				OpenFor:      30 * time.Millisecond,
				AllowPartial: true,
			},
			Fault: func(n, id int) (pager.FaultConfig, bool) {
				for _, v := range victims(n) {
					if id == v {
						return pager.FaultConfig{
							Seed: int64(1000 + id),
							Read: pager.OpFaults{FailEvery: 1},
						}, true
					}
				}
				return pager.FaultConfig{}, false
			},
			ExpectDown:     victims,
			ExpectDegraded: true,
			Heal:           true,
			HealWait:       50 * time.Millisecond,
		},
		{
			// One shard stalls instead of failing: per-shard deadlines
			// convert the stall into bounded typed degradation, and the
			// cluster converges once the stall budget is spent.
			Name: "stall-storm",
			Policy: shard.Policy{
				ShardTimeout: 5 * time.Millisecond,
				MaxAttempts:  2,
				BreakAfter:   1000, // deadlines, not the breaker, do the isolating here
				AllowPartial: true,
			},
			Fault: func(n, id int) (pager.FaultConfig, bool) {
				if id != n-1 {
					return pager.FaultConfig{}, false
				}
				return pager.FaultConfig{
					Seed:      int64(1000 + id),
					Read:      pager.OpFaults{FailEvery: 2},
					Stall:     20 * time.Millisecond,
					MaxFaults: 6,
				}, true
			},
			ExpectDown:     func(n int) []int { return []int{n - 1} },
			ExpectDegraded: true,
			Heal:           true,
		},
		{
			// The same straggler, but hedged instead of deadlined: the
			// second attempt misses the one-shot stall, so no query ever
			// degrades at all.
			Name:   "stall-hedge",
			Policy: shard.Policy{HedgeAfter: 2 * time.Millisecond},
			Fault: func(n, id int) (pager.FaultConfig, bool) {
				if id != 0 {
					return pager.FaultConfig{}, false
				}
				return pager.FaultConfig{
					Seed:      1000,
					Read:      pager.OpFaults{FailEvery: 1},
					Stall:     30 * time.Millisecond,
					MaxFaults: 1,
				}, true
			},
		},
		{
			// A shard whose writes fail quarantines itself on the first
			// batch; the survivors apply theirs and reads route around
			// the corpse with a typed partial. Quarantine is permanent —
			// no heal phase.
			Name: "write-kill",
			Policy: shard.Policy{
				AllowPartial: true,
				BreakAfter:   1,
				OpenFor:      time.Hour,
			},
			Fault: func(n, id int) (pager.FaultConfig, bool) {
				if id != 1%n {
					return pager.FaultConfig{}, false
				}
				return pager.FaultConfig{
					Seed:  int64(1000 + id),
					Write: pager.OpFaults{FailEvery: 1},
				}, true
			},
			ExpectDown:     func(n int) []int { return []int{1 % n} },
			ExpectDegraded: true,
			WriteStorm:     true,
		},
	}
}

// TestChaosSweep drives every scenario over every topology.
func TestChaosSweep(t *testing.T) {
	for _, sc := range scenarios() {
		for _, topo := range Topologies {
			sc, topo := sc, topo
			t.Run(sc.Name+"/"+topo.String(), func(t *testing.T) {
				leakcheck.Check(t)
				if err := RunScenario(topo, sc); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestChaosConcurrentStorms is the race gate: queriers hammer the cluster
// from many goroutines while the main goroutine flips fault schedules on
// and off under them (storms arriving and passing). Every individual
// answer must still satisfy the serving invariant — full or exact healthy
// union with a typed partial — and nothing may leak or race.
func TestChaosConcurrentStorms(t *testing.T) {
	leakcheck.Check(t)
	const nShards = 4
	faults := make([]*pager.FaultStore, nShards)
	pol := fastRetry()
	pol.AllowPartial = true
	pol.ShardTimeout = 20 * time.Millisecond
	pol.BreakAfter = 3
	pol.OpenFor = 5 * time.Millisecond
	r, err := shard.NewCluster(
		shard.Config{Terrain: terrain, PageSize: PageSize},
		nShards, core.NewExecutor(4), pol,
		func(id int) func(pager.Store) pager.Store {
			return func(st pager.Store) pager.Store {
				faults[id] = pager.NewFaultStore(st, pager.FaultConfig{Seed: int64(2000 + id)})
				return faults[id]
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ms := motions(192)
	ops := make([]shard.Op, len(ms))
	for i, m := range ms {
		ops[i] = shard.Op{Insert: true, M: m}
	}
	if err := r.Apply(context.Background(), ops); err != nil {
		t.Fatal(err)
	}

	// Any shard may be hit by a storm at any moment, so the full cluster
	// is the allowed blast radius; the invariant still pins every answer
	// to the exact union of whatever served it.
	allowedDown := map[int]bool{0: true, 1: true, 2: true, 3: true}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 6; round++ {
				for _, q := range queries {
					got, err := r.Query(context.Background(), q)
					if _, cerr := checkAnswer(r.Partitioner(), ms, q, got, err, allowedDown); cerr != nil {
						select {
						case errc <- cerr:
						default:
						}
						return
					}
				}
			}
		}()
	}
	storms := []pager.FaultConfig{
		{Read: pager.OpFaults{FailEvery: 3}, Transient: true},
		{Read: pager.OpFaults{FailEvery: 1}},
		{Read: pager.OpFaults{FailEvery: 2}, Stall: time.Millisecond},
		{}, // calm
	}
	for i := 0; i < 12; i++ {
		victim := i % nShards
		cfg := storms[i%len(storms)]
		cfg.Seed = int64(2000 + victim)
		faults[victim].SetConfig(cfg)
		time.Sleep(5 * time.Millisecond)
		faults[victim].SetConfig(pager.FaultConfig{Seed: int64(2000 + victim)})
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
