// Package chaostest is the topology chaos sweep for the sharded serving
// layer: it builds clusters of every topology (shard count × router
// worker count), composes a FaultStore under individual shards, and
// drives load/fault/query/heal phases while checking the serving
// contract:
//
//  1. a no-fault routed query is byte-identical to the exact answer over
//     the full population (the unsharded oracle);
//  2. a degraded query returns exactly the union of the healthy shards'
//     partitions — never a superset, never silently less — together with
//     a typed *shard.PartialError naming the missing partitions;
//  3. after a transient storm passes (or a stalled shard heals), answers
//     return to byte-identical, with no goroutine left behind.
//
// Everything is deterministic: fixed motion population, fixed query set,
// seeded fault schedules, so every run of a scenario sees the same faults
// at the same operations.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/shard"
)

// PageSize keeps even small populations spanning deep trees with real
// splits, the faulttest convention.
const PageSize = 512

var terrain = dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

// motions is the deterministic population (the faulttest stride pattern).
func motions(n int) []dual.Motion {
	ms := make([]dual.Motion, n)
	for i := range ms {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		ms[i] = dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), T0: 0, V: v}
	}
	return ms
}

// queries spans the spectrum a router cares about: single-band narrow
// windows, multi-band mid-size ones, and full-terrain sweeps.
var queries = []dual.MORQuery{
	{Y1: 0, Y2: 1000, T1: 0, T2: 5},
	{Y1: 100, Y2: 300, T1: 10, T2: 40},
	{Y1: 450, Y2: 480, T1: 100, T2: 150},
	{Y1: 700, Y2: 900, T1: 0, T2: 60},
	{Y1: 950, Y2: 1000, T1: 0, T2: 10},
	{Y1: 0, Y2: 40, T1: 20, T2: 30},
}

// Topology is one cluster shape under sweep.
type Topology struct {
	Shards  int // partitions
	Workers int // router fan-out executor width
}

func (t Topology) String() string { return fmt.Sprintf("s%dw%d", t.Shards, t.Workers) }

// Topologies is the sweep grid: degenerate single-shard serving, matched
// and mismatched worker counts, and a cluster wider than the executor.
var Topologies = []Topology{
	{Shards: 1, Workers: 1},
	{Shards: 2, Workers: 2},
	{Shards: 4, Workers: 1},
	{Shards: 4, Workers: 4},
	{Shards: 8, Workers: 4},
}

// Scenario is one fault schedule × failure policy under sweep.
type Scenario struct {
	Name   string
	Policy shard.Policy
	// Fault returns the schedule to install under shard id once the
	// population is loaded (ok=false leaves the shard clean).
	Fault func(nShards, id int) (cfg pager.FaultConfig, ok bool)
	// ExpectDown lists the shards the schedule may take out (nil: none —
	// every query must be byte-identical to the oracle). A query's
	// reported missing set must always be a subset of this intersected
	// with its targets.
	ExpectDown func(nShards int) []int
	// ExpectDegraded requires at least one degraded answer during the
	// fault phase — the proof the scenario actually hurt something.
	ExpectDegraded bool
	// WriteStorm applies an extra motion batch during the fault phase
	// (instead of only querying), exercising quarantine-and-route-around.
	WriteStorm bool
	// Heal clears every fault schedule after the fault phase, waits out
	// HealWait (breaker reopen windows), and requires byte-identical
	// answers again. Quarantined shards cannot heal, so WriteStorm
	// scenarios never set it.
	Heal     bool
	HealWait time.Duration
}

// bruteForce is the exact oracle: every motion whose assigned bands
// intersect the healthy targets and which matches q. down=nil means no
// band is down.
func bruteForce(p *shard.Partitioner, ms []dual.Motion, q dual.MORQuery, down map[int]bool) []dual.OID {
	healthy := make(map[int]bool)
	for _, b := range p.Overlapping(q) {
		if !down[b] {
			healthy[b] = true
		}
	}
	var out []dual.OID
	for _, m := range ms {
		if !m.Matches(q) {
			continue
		}
		held := false
		for _, b := range p.Assign(m) {
			if healthy[b] {
				held = true
				break
			}
		}
		if held {
			out = append(out, m.OID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameOIDs(a, b []dual.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkAnswer verifies the serving invariant for one routed answer: the
// missing set (empty on success) must be within the scenario's blast
// radius, and the results must be exactly the union of the partitions
// that served.
func checkAnswer(p *shard.Partitioner, ms []dual.Motion, q dual.MORQuery,
	got []dual.OID, err error, allowedDown map[int]bool) (degraded bool, _ error) {
	down := map[int]bool{}
	if err != nil {
		var pe *shard.PartialError
		if !errors.As(err, &pe) {
			return false, fmt.Errorf("query %+v: untyped failure %w", q, err)
		}
		if len(pe.Missing) == 0 || len(pe.Causes) != len(pe.Missing) {
			return false, fmt.Errorf("query %+v: malformed PartialError %v", q, pe)
		}
		for _, id := range pe.Missing {
			if !allowedDown[id] {
				return false, fmt.Errorf("query %+v: shard %d missing, outside blast radius", q, id)
			}
			down[id] = true
		}
	}
	want := bruteForce(p, ms, q, down)
	if !sameOIDs(got, want) {
		return len(down) > 0, fmt.Errorf("query %+v (down %v): got %d oids, want %d (union of healthy partitions)",
			q, down, len(got), len(want))
	}
	return len(down) > 0, nil
}

// RunScenario drives one topology through one scenario and returns the
// first contract violation (nil: the scenario held).
func RunScenario(topo Topology, sc Scenario) error {
	faults := make([]*pager.FaultStore, topo.Shards)
	r, err := shard.NewCluster(
		shard.Config{Terrain: terrain, PageSize: PageSize},
		topo.Shards, core.NewExecutor(topo.Workers), sc.Policy,
		func(id int) func(pager.Store) pager.Store {
			return func(st pager.Store) pager.Store {
				faults[id] = pager.NewFaultStore(st, pager.FaultConfig{Seed: int64(1000 + id)})
				return faults[id]
			}
		})
	if err != nil {
		return err
	}
	defer r.Close()
	ctx := context.Background()

	// Load phase: clean, batched.
	ms := motions(192)
	ops := make([]shard.Op, len(ms))
	for i, m := range ms {
		ops[i] = shard.Op{Insert: true, M: m}
	}
	for i := 0; i < len(ops); i += 64 {
		end := i + 64
		if end > len(ops) {
			end = len(ops)
		}
		if err := r.Apply(ctx, ops[i:end]); err != nil {
			return fmt.Errorf("load: %w", err)
		}
	}

	// Baseline: every topology answers the oracle exactly before faults.
	for _, q := range queries {
		got, err := r.Query(ctx, q)
		if _, cerr := checkAnswer(r.Partitioner(), ms, q, got, err, nil); cerr != nil {
			return fmt.Errorf("baseline: %w", cerr)
		}
	}

	// Fault phase.
	if sc.Fault != nil {
		for id, fs := range faults {
			if cfg, ok := sc.Fault(topo.Shards, id); ok {
				fs.SetConfig(cfg)
			}
		}
	}
	allowedDown := map[int]bool{}
	if sc.ExpectDown != nil {
		for _, id := range sc.ExpectDown(topo.Shards) {
			allowedDown[id] = true
		}
	}
	if sc.WriteStorm {
		extra := []dual.Motion{
			{OID: 9001, Y0: 10, T0: 1, V: 0.5},
			{OID: 9002, Y0: 990, T0: 1, V: -0.5},
			{OID: 9003, Y0: 500, T0: 1, V: 0.3},
		}
		eops := make([]shard.Op, len(extra))
		for i, m := range extra {
			eops[i] = shard.Op{Insert: true, M: m}
		}
		err := r.Apply(ctx, eops)
		if topo.Shards == 1 && len(allowedDown) > 0 {
			// The whole cluster is the blast radius: the apply must fail
			// typed, and the motions must not be visible anywhere.
			var pe *shard.PartialError
			if !errors.As(err, &pe) {
				return fmt.Errorf("write storm on 1-shard cluster: err = %v, want PartialError", err)
			}
		} else {
			if len(allowedDown) > 0 {
				var pe *shard.PartialError
				if !errors.As(err, &pe) {
					return fmt.Errorf("write storm: err = %v, want PartialError", err)
				}
				for _, id := range pe.Missing {
					if !allowedDown[id] {
						return fmt.Errorf("write storm: shard %d failed, outside blast radius", id)
					}
					if !r.Shard(id).Health().Quarantined {
						return fmt.Errorf("write storm: failed shard %d not quarantined", id)
					}
				}
			} else if err != nil {
				return fmt.Errorf("write storm: %w", err)
			}
			// The survivors hold the extra motions; the union contract
			// accounts for the quarantined shard from here on.
			ms = append(ms, extra...)
		}
	}
	degraded := false
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			got, err := r.Query(ctx, q)
			d, cerr := checkAnswer(r.Partitioner(), ms, q, got, err, allowedDown)
			if cerr != nil {
				return fmt.Errorf("fault phase round %d: %w", round, cerr)
			}
			degraded = degraded || d
		}
	}
	if sc.ExpectDegraded && !degraded {
		return errors.New("fault phase: expected at least one degraded answer, every query was full")
	}
	if sc.ExpectDegraded && len(allowedDown) > 0 {
		if st := r.Stats(); st.FailedShards == 0 {
			return fmt.Errorf("fault phase: no shard call ever failed: %+v", st)
		}
	}

	// Heal phase: the storm passes, the cluster converges back to exact.
	if sc.Heal {
		for _, fs := range faults {
			fs.SetConfig(pager.FaultConfig{Seed: fs.Config().Seed})
		}
		if sc.HealWait > 0 {
			time.Sleep(sc.HealWait)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			allFull := true
			for _, q := range queries {
				got, err := r.Query(ctx, q)
				d, cerr := checkAnswer(r.Partitioner(), ms, q, got, err, allowedDown)
				if cerr != nil {
					return fmt.Errorf("heal phase: %w", cerr)
				}
				if d {
					allFull = false
				}
			}
			if allFull {
				break
			}
			if time.Now().After(deadline) {
				return errors.New("heal phase: answers still degraded after 5s")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nil
}
