// Cluster crash sweep: the durability half of the chaos harness. Where
// chaostest.go proves the serving contract under storage faults, this
// file proves the lifecycle contract under power loss: a cluster killed
// at ANY write/sync boundary of a live migration — mid receiver
// bulk-load, before the manifest flip, after it, mid source retire —
// reboots into exactly one manifest-proven topology (never a mix),
// answers the full oracle byte-identically from there, and finishes the
// interrupted migration idempotently.
//
// The machinery mirrors pager/crashtest's sweep: one crashtest.Media is
// the whole machine (every shard store, every log, and the manifest share
// it, so one crash stops them all). A recording run with no budget counts
// the crash points the migration consumes; the sweep then replays the
// workload once per point per crash mode, reboots onto the survivor
// bytes, and checks recovery.
package chaostest

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager/crashtest"
	"mobidx/internal/shard"
)

// crashEnv is a shard.Env over crashtest media. All media share one
// crashtest.Media — one simulated machine — so a single crash point kills
// shards and manifest together, exactly like pulling the plug.
type crashEnv struct {
	m        *crashtest.Media
	pageSize int

	mu    sync.Mutex
	bases map[string]*crashtest.Base
	logs  map[string]*crashtest.Log
}

func newCrashEnv(m *crashtest.Media, pageSize int) *crashEnv {
	return &crashEnv{
		m:        m,
		pageSize: pageSize,
		bases:    make(map[string]*crashtest.Base),
		logs:     make(map[string]*crashtest.Log),
	}
}

// OpenMedia implements shard.Env: first touch provisions fresh media,
// later touches return the same instances (the surviving bytes).
func (e *crashEnv) OpenMedia(name string) (shard.Media, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if b, ok := e.bases[name]; ok {
		return shard.Media{Base: b, Log: e.logs[name]}, nil
	}
	b := crashtest.NewBase(e.m, e.pageSize)
	l := crashtest.NewLog(e.m)
	e.bases[name] = b
	e.logs[name] = l
	return shard.Media{Base: b, Log: l}, nil
}

// DropMedia implements shard.Env.
func (e *crashEnv) DropMedia(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.bases, name)
	delete(e.logs, name)
	return nil
}

// reboot returns the environment a restarted machine finds: each media's
// survivor image per the crash mode, on fresh never-crashing media.
func (e *crashEnv) reboot(m *crashtest.Media) *crashEnv {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := newCrashEnv(m, e.pageSize)
	for name, b := range e.bases {
		r.bases[name] = b.Survivor(m)
		r.logs[name] = e.logs[name].Survivor(m)
	}
	return r
}

// Recovery states a killed migration can reboot into. The sweep requires
// every one of them to be observed — proof that the enumerated crash
// points actually cover all four kill windows (before the prepare record,
// mid receiver load, between flip and retire, and after completion).
const (
	RecoveredOld      = "old"      // pre-prepare: old topology, no migration record
	RecoveredPrepared = "prepared" // receiver invisible, old topology serves
	RecoveredFlipped  = "flipped"  // new topology published, source not yet trimmed
	RecoveredDone     = "done"     // migration fully retired
)

// RecoveryStates lists every legal post-crash state in lifecycle order.
var RecoveryStates = []string{RecoveredOld, RecoveredPrepared, RecoveredFlipped, RecoveredDone}

// exactAnswers is the unsharded oracle over a fully healthy cluster: for
// each package query, every matching motion's OID, ascending.
func exactAnswers(pop []dual.Motion) [][]dual.OID {
	out := make([][]dual.OID, len(queries))
	for i, q := range queries {
		var res []dual.OID
		for _, m := range pop {
			if m.Matches(q) {
				res = append(res, m.OID)
			}
		}
		sort.Slice(res, func(a, b int) bool { return res[a] < res[b] })
		out[i] = res
	}
	return out
}

func checkExact(ctx context.Context, c *shard.Cluster, want [][]dual.OID, tag string) error {
	for i, q := range queries {
		got, err := c.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("%s: query %d: %w", tag, i, err)
		}
		if !sameOIDs(got, want[i]) {
			return fmt.Errorf("%s: query %d: %d oids, want %d (exact oracle)", tag, i, len(got), len(want[i]))
		}
	}
	return nil
}

// crashClusterConfig pins the sweep to a single-worker executor: tasks
// run sequentially on the calling goroutine, so the I/O sequence — and
// therefore the crash-point numbering — is identical on every run.
func crashClusterConfig() shard.ClusterConfig {
	return shard.ClusterConfig{Terrain: terrain, PageSize: PageSize, Exec: core.NewExecutor(1)}
}

// RunClusterCrashSweep kills an nShards-cluster at every crash point of a
// live band split under the given crash mode, reboots, and checks the
// lifecycle contract at each point. It returns how often each recovery
// state was observed (the caller asserts full coverage) and the first
// violation found.
func RunClusterCrashSweep(nShards int, mode crashtest.Mode) (map[string]int, error) {
	ctx := context.Background()
	ms := motions(64)
	band := nShards / 2
	lo := terrain.YMax * float64(band) / float64(nShards)
	hi := terrain.YMax * float64(band+1) / float64(nShards)
	cut := (lo + hi) / 2
	want := exactAnswers(ms)
	// One post-recovery write, landing in the receiver's half of the split
	// band, proves the healed cluster routes writes under the new topology.
	extra := dual.Motion{OID: 9999, Y0: cut, T0: 0, V: 0.5}
	want2 := exactAnswers(append(append([]dual.Motion{}, ms...), extra))

	// Recording run: no budget, count the crash points the migration spans.
	rec := crashtest.NewMedia(mode, 0)
	c, err := shard.OpenCluster(newCrashEnv(rec, PageSize), crashClusterConfig(), nShards)
	if err != nil {
		return nil, fmt.Errorf("record open: %w", err)
	}
	if err := c.BulkLoad(ctx, ms); err != nil {
		return nil, fmt.Errorf("record load: %w", err)
	}
	preludePoints := rec.Points()
	if err := c.Split(ctx, band, cut); err != nil {
		return nil, fmt.Errorf("record split: %w", err)
	}
	splitPoints := rec.Points()
	if err := c.Close(); err != nil {
		return nil, fmt.Errorf("record close: %w", err)
	}
	if splitPoints <= preludePoints {
		return nil, fmt.Errorf("split consumed no crash points (%d..%d)", preludePoints, splitPoints)
	}

	// Sweep: one replay per crash point inside the migration, plus one
	// more whose crash lands in Close — the migration completes durably,
	// covering the "done" recovery state.
	seen := make(map[string]int)
	for budget := preludePoints + 1; budget <= splitPoints+1; budget++ {
		if err := runClusterCrashPoint(nShards, mode, budget, preludePoints, ms, band, cut, want, extra, want2, seen); err != nil {
			return seen, fmt.Errorf("%s budget %d: %w", mode, budget, err)
		}
	}
	return seen, nil
}

// runClusterCrashPoint replays the workload until the budget-th crash
// point kills the machine, reboots on the survivor bytes, and verifies:
// exactly one recovered topology, oracle-exact answers, idempotent
// completion of the migration, and post-recovery writability.
func runClusterCrashPoint(nShards int, mode crashtest.Mode, budget, preludePoints int,
	ms []dual.Motion, band int, cut float64,
	want [][]dual.OID, extra dual.Motion, want2 [][]dual.OID, seen map[string]int) error {
	ctx := context.Background()
	m := crashtest.NewMedia(mode, budget)
	env := newCrashEnv(m, PageSize)
	c, err := shard.OpenCluster(env, crashClusterConfig(), nShards)
	if err != nil {
		return fmt.Errorf("pre-crash open: %w", err)
	}
	if err := c.BulkLoad(ctx, ms); err != nil {
		return fmt.Errorf("pre-crash load: %w", err)
	}
	if got := m.Points(); got != preludePoints {
		return fmt.Errorf("nondeterministic workload: %d points after load, recorded %d", got, preludePoints)
	}
	if err := c.Split(ctx, band, cut); err != nil && !m.Crashed() {
		return fmt.Errorf("split failed without crashing: %w", err)
	}
	// A dead machine's Close fails with ErrCrash; that is the crash, not a
	// finding. A close failure on a live machine is a real bug.
	if err := c.Close(); err != nil && !m.Crashed() {
		return fmt.Errorf("close failed without crashing: %w", err)
	}

	// Reboot onto the survivor bytes and verify.
	env2 := env.reboot(crashtest.NewMedia(mode, 0))
	c2, err := shard.OpenCluster(env2, crashClusterConfig(), nShards)
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	verr := func() error {
		bands, epoch := c2.Bands(), c2.Epoch()
		mig, pending := c2.PendingMigration()
		var state string
		switch {
		case bands == nShards && epoch == 1 && !pending:
			state = RecoveredOld
		case bands == nShards && epoch == 1 && pending && !mig.Flipped:
			state = RecoveredPrepared
		case bands == nShards+1 && epoch == 2 && pending && mig.Flipped:
			state = RecoveredFlipped
		case bands == nShards+1 && epoch == 2 && !pending:
			state = RecoveredDone
		default:
			return fmt.Errorf("mixed topology recovered: %d bands, epoch %d, migration %+v (pending %v)",
				bands, epoch, mig, pending)
		}
		seen[state]++
		if pending && (mig.Band != band || mig.Cut != cut) {
			return fmt.Errorf("recovered migration %+v, want band %d cut %v", mig, band, cut)
		}
		// Whatever step died, the recovered cluster answers the full oracle
		// byte-identically: pre-flip the receiver is invisible, post-flip
		// the untrimmed source is a harmless superset the merge dedups.
		if err := checkExact(ctx, c2, want, "recovered ("+state+")"); err != nil {
			return err
		}
		// Finish the job: resume the recovered migration, or redo the
		// split when the crash preceded even the prepare record.
		if pending {
			if err := c2.ResumeMigration(ctx); err != nil {
				return fmt.Errorf("resume from %s: %w", state, err)
			}
		} else if bands == nShards {
			if err := c2.Split(ctx, band, cut); err != nil {
				return fmt.Errorf("re-split: %w", err)
			}
		}
		if got := c2.Bands(); got != nShards+1 {
			return fmt.Errorf("bands after resume = %d, want %d", got, nShards+1)
		}
		if got := c2.Epoch(); got != 2 {
			return fmt.Errorf("epoch after resume = %d, want 2", got)
		}
		if _, p := c2.PendingMigration(); p {
			return errors.New("migration still pending after resume")
		}
		if err := checkExact(ctx, c2, want, "resumed"); err != nil {
			return err
		}
		if err := c2.Apply(ctx, []shard.Op{{Insert: true, M: extra}}); err != nil {
			return fmt.Errorf("post-recovery write: %w", err)
		}
		return checkExact(ctx, c2, want2, "post-recovery write")
	}()
	return errors.Join(verr, c2.Close())
}
