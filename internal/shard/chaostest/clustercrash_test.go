package chaostest

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
	"mobidx/internal/pager/crashtest"
	"mobidx/internal/shard"
)

// TestClusterCrashSweep kills a live band split at every write/sync
// boundary, under every crash mode, across the topology grid, and
// requires: one manifest-proven topology on reboot (never a mix),
// byte-identical recovered answers, idempotent resume, and at least one
// crash point recovering in each lifecycle state — the proof that the
// sweep really covered the mid-load, pre-flip, post-flip and mid-retire
// kill windows.
func TestClusterCrashSweep(t *testing.T) {
	modes := []crashtest.Mode{crashtest.KeepAll, crashtest.LoseUnsynced, crashtest.TearLast}
	for _, n := range []int{1, 2, 4, 8} {
		for _, mode := range modes {
			n, mode := n, mode
			t.Run(fmt.Sprintf("s%d/%s", n, mode), func(t *testing.T) {
				leakcheck.Check(t)
				seen, err := RunClusterCrashSweep(n, mode)
				if err != nil {
					t.Fatal(err)
				}
				for _, state := range RecoveryStates {
					if seen[state] == 0 {
						t.Errorf("no crash point recovered in state %q (observed %v)", state, seen)
					}
				}
			})
		}
	}
}

// TestClusterSplitFaultResume drives a migration into injected storage
// faults rather than a crash: the split receiver's store dies, Split
// fails, and the manifest must still prove the prepared state — the old
// topology keeps serving exactly, and once the storage heals
// ResumeMigration completes the split exactly.
func TestClusterSplitFaultResume(t *testing.T) {
	leakcheck.Check(t)
	ctx := context.Background()
	ms := motions(96)
	want := exactAnswers(ms)
	env := shard.NewMemEnv(PageSize)

	// The receiver of the first split gets store id 2 (stores 0 and 1 hold
	// the initial bands). Its storage fails every write while `hurt` is
	// set; WrapStore runs again on every reopen, so clearing the flag
	// before the resume models the fault passing.
	var hurt atomic.Bool
	hurt.Store(true)
	cfg := shard.ClusterConfig{
		Terrain:  terrain,
		PageSize: PageSize,
		WrapStore: func(storeID int) func(pager.Store) pager.Store {
			if storeID != 2 {
				return nil
			}
			return func(st pager.Store) pager.Store {
				fc := pager.FaultConfig{Seed: 3002}
				if hurt.Load() {
					fc.Write = pager.OpFaults{FailEvery: 1}
				}
				return pager.NewFaultStore(st, fc)
			}
		},
	}
	c, err := shard.OpenCluster(env, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	e0 := c.Epoch()

	if err := c.Split(ctx, 1, 750); err == nil {
		t.Fatal("split over dead receiver storage succeeded")
	}
	mig, pending := c.PendingMigration()
	if !pending || mig.Flipped || mig.Band != 1 || mig.Cut != 750 {
		t.Fatalf("after failed split: migration %+v (pending %v), want prepared band 1 cut 750", mig, pending)
	}
	if c.Epoch() != e0 || c.Bands() != 2 {
		t.Fatalf("failed split moved topology: epoch %d bands %d, want epoch %d bands 2", c.Epoch(), c.Bands(), e0)
	}
	if err := checkExact(ctx, c, want, "old topology after failed split"); err != nil {
		t.Fatal(err)
	}

	// A second Split must refuse while the wounded migration is pending.
	if err := c.Split(ctx, 0, 250); err == nil {
		t.Fatal("second split started over a pending migration")
	}

	hurt.Store(false)
	if err := c.ResumeMigration(ctx); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 || c.Bands() != 3 {
		t.Fatalf("after resume: epoch %d bands %d, want epoch %d bands 3", c.Epoch(), c.Bands(), e0+1)
	}
	if _, pending := c.PendingMigration(); pending {
		t.Fatal("migration still pending after resume")
	}
	if err := checkExact(ctx, c, want, "after healed resume"); err != nil {
		t.Fatal(err)
	}
}
