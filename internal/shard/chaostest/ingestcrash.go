// Ingest crash sweep: power-loss coverage for the log-structured write
// tier. A single ingest shard runs a deterministic update workload sized
// so the memtable freezes into runs and the runs fold into the base index
// several times; the sweep then kills the machine at EVERY write/sync
// boundary that workload consumes — including the ones inside a fold's
// catalog rewrite — under each crash mode, reboots onto the survivor
// bytes, and requires:
//
//  1. recovery is empty-or-complete at an Apply-batch boundary: the
//     recovered motion set equals the state after exactly the committed
//     batches, or after the one batch in flight — never a torn run, never
//     a base/watermark mix (shard.Open's internal consistency checks make
//     a torn state an open error, which the sweep treats as a violation);
//  2. the recovered shard answers the package queries oracle-exactly,
//     whether the delta suffix was replayed into runs or the crash landed
//     on a freshly merged (delta-free) image — the sweep asserts both
//     recovery shapes are observed;
//  3. the recovered shard keeps ingesting, and enough fresh writes push
//     it through another freeze-and-fold cycle.
package chaostest

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mobidx/internal/dual"
	"mobidx/internal/pager/crashtest"
	"mobidx/internal/shard"
)

// ingestCrashConfig keeps the tier thresholds tiny so the short workload
// crosses several freeze and fold boundaries, putting crash points inside
// the interesting windows. GroupCommit stays off: the sweep needs a
// deterministic sync sequence, and the group-commit torn-tail coverage
// lives in pager/crashtest.
func ingestCrashConfig() shard.Config {
	return shard.Config{
		Terrain:  terrain,
		PageSize: PageSize,
		Ingest:   &shard.IngestConfig{MemtableFlush: 8, MaxRuns: 2},
	}
}

// ingestCrashBatches is the deterministic workload: insert batches
// covering the population, then update batches that move existing objects
// (delete-exact + insert, the tier's upsert discipline). All motions keep
// T0 = 0 so every package query stays in the model-conformant regime the
// tier's differential contract covers. The second result is the shadow
// oracle: states[k] is the live motion set, OID-sorted, after the first k
// batches committed.
func ingestCrashBatches() (batches [][]shard.Op, states [][]dual.Motion) {
	pop := motions(40)
	for i := 0; i < len(pop); i += 4 {
		b := make([]shard.Op, 4)
		for j := range b {
			b[j] = shard.Op{Insert: true, M: pop[i+j]}
		}
		batches = append(batches, b)
	}
	live := make(map[dual.OID]dual.Motion, len(pop))
	for _, m := range pop {
		live[m.OID] = m
	}
	for r := 0; r < 4; r++ {
		var b []shard.Op
		for k := 0; k < 3; k++ {
			id := dual.OID(1 + (r*13+k*5)%len(pop))
			old := live[id]
			upd := old
			upd.Y0 = math.Mod(old.Y0+211, terrain.YMax)
			b = append(b, shard.Op{Insert: false, M: old}, shard.Op{Insert: true, M: upd})
			live[id] = upd
		}
		batches = append(batches, b)
	}

	cur := make(map[dual.OID]dual.Motion)
	states = append(states, nil)
	for _, b := range batches {
		for _, op := range b {
			if op.Insert {
				cur[op.M.OID] = op.M
			} else {
				delete(cur, op.M.OID)
			}
		}
		states = append(states, sortedMotions(cur))
	}
	return batches, states
}

// ingestCrashExtra is the post-recovery load: fresh OIDs, enough of them
// to force another freeze-and-fold on the rebooted shard.
func ingestCrashExtra() [][]shard.Op {
	var batches [][]shard.Op
	for i := 0; i < 24; i += 4 {
		b := make([]shard.Op, 4)
		for j := range b {
			k := i + j
			b[j] = shard.Op{Insert: true, M: dual.Motion{
				OID: dual.OID(200 + k), Y0: float64((k * 211) % 1000), T0: 0,
				V: 0.25 + 0.2*float64(k%6),
			}}
		}
		batches = append(batches, b)
	}
	return batches
}

func sortedMotions(cur map[dual.OID]dual.Motion) []dual.Motion {
	out := make([]dual.Motion, 0, len(cur))
	for _, m := range cur {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}

func sameMotions(a, b []dual.Motion) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkIngestExact verifies the recovered shard against the brute-force
// oracle over pop for every package query.
func checkIngestExact(ctx context.Context, s *shard.Shard, pop []dual.Motion, tag string) error {
	for i, q := range queries {
		got, err := s.Query(ctx, q)
		if err != nil {
			return fmt.Errorf("%s: query %d: %w", tag, i, err)
		}
		var want []dual.OID
		for _, m := range pop {
			if m.Matches(q) {
				want = append(want, m.OID)
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !sameOIDs(got, want) {
			return fmt.Errorf("%s: query %d: %d oids, want %d (brute force)", tag, i, len(got), len(want))
		}
	}
	return nil
}

// RunIngestCrashSweep kills a single ingest shard at every crash point
// its flush workload consumes under the given mode and verifies recovery
// at each. It reports how many recoveries rebooted with a live delta
// (suffix replayed into the tier) versus onto a fully merged image (delta
// empty) — the caller asserts both shapes were exercised — and the first
// contract violation found.
func RunIngestCrashSweep(mode crashtest.Mode) (deltaRecoveries, cleanRecoveries int, err error) {
	ctx := context.Background()
	batches, states := ingestCrashBatches()
	extra := ingestCrashExtra()
	cfg := ingestCrashConfig()

	// Recording run: count the crash points the open prelude and the
	// workload consume, and prove the thresholds actually fire.
	rec := crashtest.NewMedia(mode, 0)
	s, err := shard.Open(cfg, crashtest.NewBase(rec, PageSize), crashtest.NewLog(rec))
	if err != nil {
		return 0, 0, fmt.Errorf("record open: %w", err)
	}
	preludePoints := rec.Points()
	for i, b := range batches {
		if err := s.Apply(ctx, b); err != nil {
			return 0, 0, fmt.Errorf("record batch %d: %w", i, err)
		}
	}
	if st, ok := s.IngestStats(); !ok || st.Freezes < 2 || st.Merges < 1 {
		return 0, 0, fmt.Errorf("workload too small to cross flush boundaries: %+v", st)
	}
	if err := s.Close(); err != nil {
		return 0, 0, fmt.Errorf("record close: %w", err)
	}
	points := rec.Points()
	if points <= preludePoints {
		return 0, 0, fmt.Errorf("workload consumed no crash points (%d..%d)", preludePoints, points)
	}

	// Sweep: one replay per crash point inside the workload, plus one
	// whose budget outlives it (no crash — the fully committed image).
	for budget := preludePoints + 1; budget <= points+1; budget++ {
		delta, clean, perr := runIngestCrashPoint(ctx, mode, budget, preludePoints, cfg, batches, states, extra)
		if perr != nil {
			return deltaRecoveries, cleanRecoveries, fmt.Errorf("%s budget %d: %w", mode, budget, perr)
		}
		deltaRecoveries += delta
		cleanRecoveries += clean
	}
	return deltaRecoveries, cleanRecoveries, nil
}

// runIngestCrashPoint replays the workload until the budget-th crash
// point kills the machine, reboots, and verifies empty-or-complete
// recovery, oracle-exact answers, and continued ingest.
func runIngestCrashPoint(ctx context.Context, mode crashtest.Mode, budget, preludePoints int,
	cfg shard.Config, batches [][]shard.Op, states [][]dual.Motion,
	extra [][]shard.Op) (deltaRecovery, cleanRecovery int, _ error) {
	m := crashtest.NewMedia(mode, budget)
	base := crashtest.NewBase(m, PageSize)
	log := crashtest.NewLog(m)
	s, err := shard.Open(cfg, base, log)
	if err != nil {
		return 0, 0, fmt.Errorf("pre-crash open: %w", err)
	}
	if got := m.Points(); got != preludePoints {
		return 0, 0, fmt.Errorf("nondeterministic workload: %d points after open, recorded %d", got, preludePoints)
	}
	completed, inFlight := 0, false
	for _, b := range batches {
		if err := s.Apply(ctx, b); err != nil {
			if !m.Crashed() {
				return 0, 0, fmt.Errorf("batch %d failed without crashing: %w", completed, err)
			}
			inFlight = true
			break
		}
		completed++
	}
	// A dead machine's Close fails with ErrCrash; that is the crash, not
	// a finding. A close failure on a live machine is a real bug.
	if err := s.Close(); err != nil && !m.Crashed() {
		return 0, 0, fmt.Errorf("close failed without crashing: %w", err)
	}

	// Reboot onto the survivor bytes. A torn run or a base/watermark mix
	// surfaces here as an open error — Open cross-checks the superblock
	// watermark, the catalog, and the replayed tier against each other.
	m2 := crashtest.NewMedia(mode, 0)
	s2, err := shard.Open(cfg, base.Survivor(m2), log.Survivor(m2))
	if err != nil {
		return 0, 0, fmt.Errorf("recovery open: %w", err)
	}
	defer s2.Close()

	// Empty-or-complete: the recovered motion set sits at an Apply-batch
	// boundary — everything through the last committed batch, with the
	// in-flight batch either wholly present or wholly absent.
	gotMs, err := s2.Motions()
	if err != nil {
		return 0, 0, fmt.Errorf("recovered catalog: %w", err)
	}
	sort.Slice(gotMs, func(i, j int) bool { return gotMs[i].OID < gotMs[j].OID })
	state := completed
	if !sameMotions(gotMs, states[completed]) {
		if !inFlight || !sameMotions(gotMs, states[completed+1]) {
			return 0, 0, fmt.Errorf("torn recovery: %d motions, not the state after %d or %d batches",
				len(gotMs), completed, completed+1)
		}
		state = completed + 1
	}
	if s2.Len() != len(states[state]) {
		return 0, 0, fmt.Errorf("recovered Len = %d, catalog holds %d", s2.Len(), len(states[state]))
	}
	st, ok := s2.IngestStats()
	if !ok {
		return 0, 0, fmt.Errorf("recovered shard lost its ingest tier")
	}
	if st.MemLen > 0 || st.Runs > 0 {
		deltaRecovery = 1
	} else {
		cleanRecovery = 1
	}
	if err := checkIngestExact(ctx, s2, states[state], "recovered"); err != nil {
		return 0, 0, err
	}

	// The rebooted shard keeps ingesting and folds again.
	pop := append([]dual.Motion{}, states[state]...)
	for i, b := range extra {
		if err := s2.Apply(ctx, b); err != nil {
			return 0, 0, fmt.Errorf("post-recovery batch %d: %w", i, err)
		}
		for _, op := range b {
			pop = append(pop, op.M)
		}
	}
	if st, _ := s2.IngestStats(); st.Merges == 0 {
		return 0, 0, fmt.Errorf("recovered shard never folded: %+v", st)
	}
	if err := checkIngestExact(ctx, s2, pop, "post-recovery"); err != nil {
		return 0, 0, err
	}
	return deltaRecovery, cleanRecovery, nil
}
