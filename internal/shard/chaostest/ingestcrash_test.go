package chaostest

import (
	"testing"

	"mobidx/internal/leakcheck"
	"mobidx/internal/pager/crashtest"
)

// TestIngestCrashSweep kills an ingest shard at every write/sync boundary
// of a memtable-flush workload under each crash mode and requires
// empty-or-complete recovery — never a torn run — plus oracle-exact
// answers and continued folding afterwards. Both recovery shapes (live
// delta replayed, freshly merged image) must be observed.
func TestIngestCrashSweep(t *testing.T) {
	for _, mode := range []crashtest.Mode{crashtest.KeepAll, crashtest.LoseUnsynced, crashtest.TearLast} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			leakcheck.Check(t)
			delta, clean, err := RunIngestCrashSweep(mode)
			if err != nil {
				t.Fatal(err)
			}
			if delta == 0 || clean == 0 {
				t.Fatalf("sweep missed a recovery shape: %d delta recoveries, %d clean", delta, clean)
			}
			t.Logf("%s: %d delta recoveries, %d clean", mode, delta, clean)
		})
	}
}
