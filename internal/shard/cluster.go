package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// ClusterConfig configures a durable cluster.
type ClusterConfig struct {
	// Terrain is the shared dual-space terrain (YMax > 0 required).
	Terrain dual.Terrain
	// C, Codec, PageSize, AutoCheckpointBytes configure every shard (see
	// Config).
	C                   int
	Codec               bptree.Codec
	PageSize            int
	AutoCheckpointBytes int64
	// Policy is the router failure policy.
	Policy Policy
	// Exec bounds the router fan-out (nil selects GOMAXPROCS-bounded).
	Exec *core.Executor
	// WrapStore, when non-nil, is called with each shard's store id to
	// produce that shard's store wrapper — the chaos harness's fault hook,
	// keyed by store id (stable across band renumbering) rather than band.
	WrapStore func(storeID int) func(pager.Store) pager.Store
}

// Migration describes an in-flight (or just-interrupted) split.
type Migration struct {
	// Band is the band being split, in the pre-flip numbering.
	Band int
	// Cut is the split position.
	Cut float64
	// Flipped reports whether the new topology is already published (the
	// remaining work is trimming the source), as opposed to prepared-only
	// (the receiver is not visible yet).
	Flipped bool
}

// Cluster is the durable sharded serving deployment: a Router over shards
// whose stores live in an Env, plus the epoch-versioned manifest that
// records which store serves which band. Open recovers the whole cluster
// from the Env's surviving media; Split rebalances a hot band while the
// cluster serves; Revive brings a quarantined shard back. All admin
// operations are serialized; serving operations (Query/Apply/BulkLoad)
// run concurrently with everything except the short quiesce barriers
// around a migration flip and a source trim.
type Cluster struct {
	env    Env
	cfg    ClusterConfig
	router *Router
	man    *manifestStore

	adminMu sync.Mutex // serializes Split/ResumeMigration/Revive/Close
	cur     manifest   // current manifest; written under adminMu
	closed  bool
}

// OpenCluster opens (first call) or recovers (every later call) a cluster
// in env. n is the initial number of equal bands and is only read when
// the environment is fresh — on recovery the manifest dictates topology.
// An interrupted migration is NOT resumed automatically: the cluster
// serves correctly in the state the manifest proves (old topology if the
// crash hit before the flip, new topology after), and PendingMigration /
// ResumeMigration let the operator finish the job.
func OpenCluster(env Env, cfg ClusterConfig, n int) (*Cluster, error) {
	if cfg.Terrain.YMax <= 0 {
		return nil, fmt.Errorf("shard: cluster needs Terrain.YMax > 0, got %v", cfg.Terrain.YMax)
	}
	media, err := env.OpenMedia(manifestMediaName)
	if err != nil {
		return nil, fmt.Errorf("shard: open manifest media: %w", err)
	}
	ms, man, err := openManifestStore(media, func() (manifest, error) {
		if n < 1 {
			return manifest{}, fmt.Errorf("shard: cluster needs >= 1 band, got %d", n)
		}
		m := manifest{Epoch: 1, NextStore: n}
		for i := 0; i < n; i++ {
			hi := cfg.Terrain.YMax * float64(i+1) / float64(n)
			m.Bands = append(m.Bands, bandEntry{Store: i, Hi: hi})
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}
	c := &Cluster{env: env, cfg: cfg, man: ms, cur: man}
	part, err := man.partitionerOf()
	if err != nil {
		return nil, errors.Join(err, ms.close())
	}
	shards := make([]*Shard, 0, len(man.Bands))
	fail := func(err error) (*Cluster, error) {
		for _, s := range shards {
			err = errors.Join(err, s.Close())
		}
		return nil, errors.Join(err, ms.close())
	}
	for _, b := range man.Bands {
		s, err := c.openShard(b.Store)
		if err != nil {
			return fail(err)
		}
		shards = append(shards, s)
	}
	r, err := NewRouter(shards, part, cfg.Exec, cfg.Policy)
	if err != nil {
		return fail(err)
	}
	c.router = r
	return c, nil
}

// openShard opens (or recovers) the shard serving storeID from its media.
func (c *Cluster) openShard(storeID int) (*Shard, error) {
	media, err := c.env.OpenMedia(shardMediaName(storeID))
	if err != nil {
		return nil, fmt.Errorf("shard: open media for store %d: %w", storeID, err)
	}
	scfg := Config{
		ID:                  storeID,
		Terrain:             c.cfg.Terrain,
		C:                   c.cfg.C,
		Codec:               c.cfg.Codec,
		PageSize:            c.cfg.PageSize,
		AutoCheckpointBytes: c.cfg.AutoCheckpointBytes,
	}
	if c.cfg.WrapStore != nil {
		scfg.WrapStore = c.cfg.WrapStore(storeID)
	}
	return Open(scfg, media.Base, media.Log)
}

// Router exposes the serving router (stats, degraded list, direct shard
// inspection).
func (c *Cluster) Router() *Router { return c.router }

// Query serves a MOR query through the router.
func (c *Cluster) Query(ctx context.Context, q dual.MORQuery) ([]dual.OID, error) {
	return c.router.Query(ctx, q)
}

// Apply routes a motion batch through the router.
func (c *Cluster) Apply(ctx context.Context, ops []Op) error {
	return c.router.Apply(ctx, ops)
}

// BulkLoad routes a full reload through the router.
func (c *Cluster) BulkLoad(ctx context.Context, ms []dual.Motion) error {
	return c.router.BulkLoad(ctx, ms)
}

// Epoch returns the manifest epoch: it changes exactly once per completed
// topology flip, so two equal epochs mean the identical band table.
func (c *Cluster) Epoch() uint64 {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	return c.cur.Epoch
}

// Bands returns the number of bands in the current topology.
func (c *Cluster) Bands() int {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	return len(c.cur.Bands)
}

// PendingMigration reports the interrupted migration recovered from the
// manifest (or started and not yet finished), if any.
func (c *Cluster) PendingMigration() (Migration, bool) {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	if c.cur.Mig.State == migNone {
		return Migration{}, false
	}
	return Migration{
		Band:    c.cur.Mig.Band,
		Cut:     c.cur.Mig.Cut,
		Flipped: c.cur.Mig.State == migFlipped,
	}, true
}

// Split carves band i in two at cut: the band keeps [lo, cut) and a new
// band i+1 (served by a freshly allocated store) takes [cut, hi). The
// source serves throughout; the receiver is bulk-loaded off a snapshot,
// caught up and published under a short quiesce barrier that also flips
// the manifest epoch, and the source is trimmed afterwards. Every durable
// step is one atomic WAL batch, so a crash at any instant leaves the
// manifest proving exactly one topology; ResumeMigration finishes an
// interrupted split idempotently from whatever step it died at.
func (c *Cluster) Split(ctx context.Context, band int, cut float64) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	if c.closed {
		return errors.New("shard: cluster closed")
	}
	if c.cur.Mig.State != migNone {
		return fmt.Errorf("shard: migration of band %d pending; resume it first", c.cur.Mig.Band)
	}
	part, err := c.cur.partitionerOf()
	if err != nil {
		return err
	}
	if _, err := part.SplitBand(band, cut); err != nil {
		return err
	}
	m := c.cur
	m.Mig = migRecord{State: migPrepared, Band: band, Cut: cut, NewStore: m.NextStore}
	m.NextStore++
	if err := c.man.save(m); err != nil {
		return fmt.Errorf("shard: prepare split: %w", err)
	}
	c.cur = m
	return c.runMigration(ctx)
}

// ResumeMigration finishes a migration interrupted by a crash or fault,
// from whichever durable step it reached. It is idempotent: every step
// either atomically replaces state (bulk loads) or atomically swaps the
// manifest, so re-running a completed step is a no-op-shaped rebuild of
// the same state.
func (c *Cluster) ResumeMigration(ctx context.Context) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	if c.closed {
		return errors.New("shard: cluster closed")
	}
	if c.cur.Mig.State == migNone {
		return nil
	}
	return c.runMigration(ctx)
}

// assignedTo reports whether part assigns m to band.
func assignedTo(part *Partitioner, m dual.Motion, band int) bool {
	bands := part.Assign(m)
	return len(bands) > 0 && bands[0] <= band && band <= bands[len(bands)-1]
}

func filterAssigned(part *Partitioner, ms []dual.Motion, band int) []dual.Motion {
	out := make([]dual.Motion, 0, len(ms))
	for _, m := range ms {
		if assignedTo(part, m, band) {
			out = append(out, m)
		}
	}
	return out
}

// motionsEqual compares two catalog enumerations (both sorted by the
// catalog's deterministic order).
func motionsEqual(a, b []dual.Motion) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runMigration drives the pending migration to completion. adminMu held.
func (c *Cluster) runMigration(ctx context.Context) error {
	mig := c.cur.Mig
	if mig.State == migPrepared {
		if err := c.migratePrepared(ctx); err != nil {
			return err
		}
	}
	return c.migrateRetire(ctx)
}

// migratePrepared performs the prepared→flipped step: load the receiver
// off a source snapshot while the source serves, then catch up and
// publish under the quiesce barrier.
func (c *Cluster) migratePrepared(ctx context.Context) error {
	mig := c.cur.Mig
	oldPart, err := c.cur.partitionerOf()
	if err != nil {
		return err
	}
	newPart, err := oldPart.SplitBand(mig.Band, mig.Cut)
	if err != nil {
		return err
	}
	src := c.router.Shard(mig.Band)
	if src == nil {
		return fmt.Errorf("shard: split source band %d missing", mig.Band)
	}
	recv, err := c.openShard(mig.NewStore)
	if err != nil {
		return fmt.Errorf("shard: open split receiver: %w", err)
	}
	// Warm load: the bulk of the copy happens while the source serves.
	// The receiver is not in any topology yet, so nothing can query it.
	snap, err := src.Motions()
	if err != nil {
		return errors.Join(fmt.Errorf("shard: split snapshot: %w", err), recv.Close())
	}
	if err := recv.BulkLoad(ctx, filterAssigned(newPart, snap, mig.Band+1)); err != nil {
		return errors.Join(fmt.Errorf("shard: split warm load: %w", err), recv.Close())
	}
	// Flip: under the exclusive topology lock nothing is in flight, so
	// the source catalog is final. Catch up the receiver if writes landed
	// since the snapshot, commit the flipped manifest (epoch bump + new
	// band table) in one batch, and install the new topology. The barrier
	// holds only for the delta plus one small manifest write.
	err = c.router.swapTopology(func(old topology) (topology, error) {
		cur, err := src.Motions()
		if err != nil {
			return topology{}, fmt.Errorf("shard: split catch-up read: %w", err)
		}
		if !motionsEqual(cur, snap) {
			if err := recv.BulkLoad(ctx, filterAssigned(newPart, cur, mig.Band+1)); err != nil {
				return topology{}, fmt.Errorf("shard: split catch-up load: %w", err)
			}
		}
		m := c.cur
		m.Epoch++
		m.Mig.State = migFlipped
		bands := make([]bandEntry, 0, len(m.Bands)+1)
		bands = append(bands, m.Bands[:mig.Band]...)
		oldHi := m.Bands[mig.Band].Hi
		bands = append(bands,
			bandEntry{Store: m.Bands[mig.Band].Store, Hi: mig.Cut},
			bandEntry{Store: mig.NewStore, Hi: oldHi})
		bands = append(bands, m.Bands[mig.Band+1:]...)
		m.Bands = bands
		if err := c.man.save(m); err != nil {
			return topology{}, fmt.Errorf("shard: split flip: %w", err)
		}
		c.cur = m
		shards := make([]*Shard, 0, len(old.shards)+1)
		shards = append(shards, old.shards[:mig.Band+1]...)
		shards = append(shards, recv)
		shards = append(shards, old.shards[mig.Band+1:]...)
		brk := make([]*breaker, 0, len(old.brk)+1)
		brk = append(brk, old.brk[:mig.Band+1]...)
		brk = append(brk, &breaker{})
		brk = append(brk, old.brk[mig.Band+1:]...)
		return topology{part: newPart, shards: shards, brk: brk}, nil
	})
	if err != nil {
		return errors.Join(err, recv.Close())
	}
	return nil
}

// migrateRetire performs the flipped→none step: trim the source shard to
// its narrowed band. Before the trim the source holds a superset of its
// band — harmless, since shard answers are predicate-exact and the merge
// deduplicates — so this step only reclaims space and is safe to redo.
// The trim runs under the quiesce barrier so no write lands between the
// catalog read and the atomic replace.
func (c *Cluster) migrateRetire(ctx context.Context) error {
	mig := c.cur.Mig
	if mig.State != migFlipped {
		return fmt.Errorf("shard: retire in migration state %d", mig.State)
	}
	err := c.router.swapTopology(func(old topology) (topology, error) {
		src := old.shards[mig.Band]
		cur, err := src.Motions()
		if err != nil {
			return topology{}, fmt.Errorf("shard: retire read: %w", err)
		}
		keep := filterAssigned(old.part, cur, mig.Band)
		if len(keep) != len(cur) {
			if err := src.BulkLoad(ctx, keep); err != nil {
				return topology{}, fmt.Errorf("shard: retire trim: %w", err)
			}
		}
		m := c.cur
		m.Mig = migRecord{State: migNone}
		if err := c.man.save(m); err != nil {
			return topology{}, fmt.Errorf("shard: retire finish: %w", err)
		}
		c.cur = m
		return old, nil
	})
	return err
}

// Revive brings the shard serving band back: the dead instance is closed,
// its media reopened — pager.OpenWALStore replays every committed batch,
// so the recovered shard serves exactly the last committed state — and
// the fresh instance swapped into the topology with a reset breaker. If
// the media cannot be recovered the shard is rebuilt from its peers'
// replicated bands instead (see RebuildFromPeers for the exactness
// contract).
func (c *Cluster) Revive(ctx context.Context, band int) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	return c.reviveLocked(ctx, band, false)
}

// RebuildFromPeers rebuilds band's shard from scratch out of the motions
// its peers replicate, dropping whatever media the store had. Trajectory
// replication makes this exact for every interior band (an interior
// band's content is a filter of the border bands' contents); the border
// bands (0 and top) hold motions no peer replicates, so rebuilding one of
// them recovers only the replicated part and the caller must accept the
// loss — WAL replay (Revive) is the lossless path.
func (c *Cluster) RebuildFromPeers(ctx context.Context, band int) error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	return c.reviveLocked(ctx, band, true)
}

func (c *Cluster) reviveLocked(ctx context.Context, band int, rebuild bool) error {
	if c.closed {
		return errors.New("shard: cluster closed")
	}
	if band < 0 || band >= len(c.cur.Bands) {
		return fmt.Errorf("shard: revive band %d of %d", band, len(c.cur.Bands))
	}
	storeID := c.cur.Bands[band].Store
	old := c.router.Shard(band)
	// Closing drains the dead instance's in-flight queries; routed
	// traffic degrades around the band until the swap below. A close
	// error only means the final checkpoint failed — WAL replay recovers
	// every committed batch regardless — so it is carried as context, not
	// treated as fatal.
	var closeErr error
	if old != nil {
		closeErr = old.Close()
	}
	var fresh *Shard
	var err error
	if !rebuild {
		fresh, err = c.openShard(storeID)
		if err != nil {
			// Media unrecoverable: fall back to the peers.
			err = errors.Join(err, closeErr)
			rebuild = true
		}
	}
	if rebuild {
		if err := c.env.DropMedia(shardMediaName(storeID)); err != nil {
			return fmt.Errorf("shard: drop media for rebuild: %w", err)
		}
		fresh, err = c.openShard(storeID)
		if err != nil {
			return fmt.Errorf("shard: rebuild open: %w", err)
		}
		ms, err := c.peerMotions(band)
		if err != nil {
			return errors.Join(err, fresh.Close())
		}
		if err := fresh.BulkLoad(ctx, ms); err != nil {
			return errors.Join(fmt.Errorf("shard: rebuild load: %w", err), fresh.Close())
		}
	}
	if _, err := c.router.ReplaceShard(band, fresh); err != nil {
		return errors.Join(err, fresh.Close())
	}
	return nil
}

// peerMotions gathers band's content from the other healthy shards'
// catalogs: every motion some peer holds that the partitioner assigns to
// band, with per-motion multiplicity the maximum any single peer reports
// (replicas hold identical multiplicity, so max-of-peers is the original
// count, not a sum of replicas).
func (c *Cluster) peerMotions(band int) ([]dual.Motion, error) {
	part, err := c.cur.partitionerOf()
	if err != nil {
		return nil, err
	}
	counts := make(map[dual.Motion]int)
	for i := range c.cur.Bands {
		if i == band {
			continue
		}
		peer := c.router.Shard(i)
		if peer == nil || !peer.Health().Healthy {
			continue
		}
		ms, err := peer.Motions()
		if err != nil {
			return nil, fmt.Errorf("shard: peer %d enumerate: %w", i, err)
		}
		local := make(map[dual.Motion]int)
		for _, m := range ms {
			if assignedTo(part, m, band) {
				local[m]++
			}
		}
		for m, n := range local {
			if n > counts[m] {
				counts[m] = n
			}
		}
	}
	var out []dual.Motion
	for m, n := range counts {
		for i := 0; i < n; i++ {
			out = append(out, m)
		}
	}
	return out, nil
}

// Checkpoint folds every healthy shard's WAL into its base store — the
// idle-time maintenance hook; recovery is correct with or without it.
func (c *Cluster) Checkpoint() error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	var errs []error
	for i := range c.cur.Bands {
		s := c.router.Shard(i)
		if s == nil || !s.Health().Healthy {
			continue
		}
		if err := s.Checkpoint(); err != nil {
			errs = append(errs, fmt.Errorf("shard: checkpoint band %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Close shuts the cluster down: every shard, then the manifest store.
func (c *Cluster) Close() error {
	c.adminMu.Lock()
	defer c.adminMu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return errors.Join(c.router.Close(), c.man.close())
}

// Compile-time interface checks for the Env implementations.
var (
	_ Env = (*MemEnv)(nil)
	_ Env = (*DirEnv)(nil)
)
