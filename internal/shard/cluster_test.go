package shard

import (
	"context"
	"testing"
	"time"

	"mobidx/internal/dual"
)

func clusterMotions(n int) []dual.Motion {
	ms := make([]dual.Motion, 0, n)
	for i := 0; i < n; i++ {
		ms = append(ms, testMotion(i))
	}
	return ms
}

func clusterQueries() []dual.MORQuery {
	return []dual.MORQuery{
		{Y1: 0, Y2: 1000, T1: 0, T2: 5},
		{Y1: 100, Y2: 300, T1: 10, T2: 40},
		{Y1: 450, Y2: 480, T1: 100, T2: 150},
		{Y1: 740, Y2: 760, T1: 5, T2: 25},
		{Y1: 0, Y2: 60, T1: 200, T2: 400},
	}
}

// oracleAnswers computes the unsharded ground truth by brute force.
func oracleAnswers(ms []dual.Motion, qs []dual.MORQuery) [][]dual.OID {
	var out [][]dual.OID
	for _, q := range qs {
		seen := map[dual.OID]bool{}
		var res []dual.OID
		for _, m := range ms {
			if m.Matches(q) && !seen[m.OID] {
				seen[m.OID] = true
				res = append(res, m.OID)
			}
		}
		// Sort ascending to match the router's merge contract.
		for i := 1; i < len(res); i++ {
			for j := i; j > 0 && res[j] < res[j-1]; j-- {
				res[j], res[j-1] = res[j-1], res[j]
			}
		}
		out = append(out, res)
	}
	return out
}

func assertOracle(t *testing.T, c *Cluster, qs []dual.MORQuery, want [][]dual.OID, tag string) {
	t.Helper()
	ctx := context.Background()
	for i, q := range qs {
		got, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: query %d: %v", tag, i, err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("%s: query %d: %d results, want %d", tag, i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("%s: query %d: result %d = %d, want %d", tag, i, j, got[j], want[i][j])
			}
		}
	}
}

func testClusterConfig() ClusterConfig {
	return ClusterConfig{Terrain: testTerrain(), PageSize: 512}
}

// TestClusterOpenRecovery: load a cluster, crash it (abandon without
// Close), reopen from the same Env, and require byte-identical answers.
func TestClusterOpenRecovery(t *testing.T) {
	env := NewMemEnv(512)
	ctx := context.Background()
	ms := clusterMotions(300)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	c, err := OpenCluster(env, testClusterConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, c, qs, want, "before crash")
	// Crash: no Close. The Env keeps the durable bytes.
	c2, err := OpenCluster(env, testClusterConfig(), 1 /* ignored on reopen */)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Bands() != 4 {
		t.Fatalf("recovered bands = %d, want 4", c2.Bands())
	}
	assertOracle(t, c2, qs, want, "after crash")

	// Recovered cluster keeps serving writes.
	extra := dual.Motion{OID: 7777, Y0: 500, T0: 0, V: 0.4}
	if err := c2.Apply(ctx, []Op{{Insert: true, M: extra}}); err != nil {
		t.Fatal(err)
	}
	want2 := oracleAnswers(append(append([]dual.Motion{}, ms...), extra), qs)
	assertOracle(t, c2, qs, want2, "after recovered write")
}

// TestClusterSplitLive splits a band while the cluster holds data and
// checks: oracle-exact answers afterwards, epoch bumped exactly once, and
// no pending migration left behind.
func TestClusterSplitLive(t *testing.T) {
	env := NewMemEnv(512)
	ctx := context.Background()
	ms := clusterMotions(300)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	c, err := OpenCluster(env, testClusterConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	e0 := c.Epoch()
	if err := c.Split(ctx, 1, 750); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() != e0+1 {
		t.Fatalf("epoch after split = %d, want %d", c.Epoch(), e0+1)
	}
	if c.Bands() != 3 {
		t.Fatalf("bands after split = %d, want 3", c.Bands())
	}
	if _, pending := c.PendingMigration(); pending {
		t.Fatal("migration still pending after Split returned")
	}
	assertOracle(t, c, qs, want, "after split")

	// Writes keep routing correctly under the new topology.
	extra := dual.Motion{OID: 8888, Y0: 800, T0: 0, V: 0.3}
	if err := c.Apply(ctx, []Op{{Insert: true, M: extra}}); err != nil {
		t.Fatal(err)
	}
	want2 := oracleAnswers(append(append([]dual.Motion{}, ms...), extra), qs)
	assertOracle(t, c, qs, want2, "after post-split write")

	// Split again on the new band; cumulative correctness.
	if err := c.Split(ctx, 0, 200); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, c, qs, want2, "after second split")
}

// TestClusterSplitCrashResume drives the split through a crash after the
// prepare step but before any flip: the reopened cluster serves the OLD
// topology exactly, and ResumeMigration completes the split exactly.
func TestClusterSplitCrashResume(t *testing.T) {
	env := NewMemEnv(512)
	ctx := context.Background()
	ms := clusterMotions(300)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	c, err := OpenCluster(env, testClusterConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	// Simulate "prepared then crashed": write the prepared manifest by
	// hand, as Split would, then abandon the cluster.
	c.adminMu.Lock()
	m := c.cur
	m.Mig = migRecord{State: migPrepared, Band: 1, Cut: 750, NewStore: m.NextStore}
	m.NextStore++
	if err := c.man.save(m); err != nil {
		t.Fatal(err)
	}
	c.adminMu.Unlock()

	c2, err := OpenCluster(env, testClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Old topology serves exactly.
	if c2.Bands() != 2 {
		t.Fatalf("bands before resume = %d, want 2", c2.Bands())
	}
	mig, pending := c2.PendingMigration()
	if !pending || mig.Band != 1 || mig.Cut != 750 || mig.Flipped {
		t.Fatalf("pending migration = %+v/%v, want band 1 cut 750 unflipped", mig, pending)
	}
	assertOracle(t, c2, qs, want, "prepared, pre-resume")

	if err := c2.ResumeMigration(ctx); err != nil {
		t.Fatal(err)
	}
	if c2.Bands() != 3 {
		t.Fatalf("bands after resume = %d, want 3", c2.Bands())
	}
	if _, pending := c2.PendingMigration(); pending {
		t.Fatal("migration still pending after resume")
	}
	assertOracle(t, c2, qs, want, "after resume")
}

// TestClusterRevive quarantines a shard with a poisoned batch, trips its
// circuit breaker into a long open window, then revives it by WAL replay
// and checks the cluster is whole again immediately: oracle-exact, no
// degraded shards (the breaker was reset with the shard, not left to its
// hour-long timer), and Revived counted.
func TestClusterRevive(t *testing.T) {
	env := NewMemEnv(512)
	ctx := context.Background()
	ms := clusterMotions(300)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	cfg := testClusterConfig()
	cfg.Policy.AllowPartial = true
	cfg.Policy.BreakAfter = 1
	cfg.Policy.OpenFor = time.Hour
	c, err := OpenCluster(env, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}

	// Force a quarantine: an Apply whose op is invalid fails the batch.
	bad := dual.Motion{OID: 1, Y0: -1e9, T0: 0, V: 0}
	s := c.Router().Shard(2)
	if err := s.Apply(ctx, []Op{{Insert: true, M: bad}}); err == nil {
		t.Fatal("invalid motion applied cleanly")
	}
	if h := s.Health(); !h.Quarantined {
		t.Fatalf("shard not quarantined: %+v", h)
	}
	// A routed query hits the corpse and trips its breaker open for an
	// hour: the revive below must reset it, not wait it out.
	if _, err := c.Query(ctx, qs[0]); err == nil {
		t.Fatal("query over quarantined shard fully succeeded")
	}
	if d := c.Router().Degraded(); len(d) != 1 || d[0] != 2 {
		t.Fatalf("degraded before revive = %v, want [2]", d)
	}

	if err := c.Revive(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if h := c.Router().Shard(2).Health(); !h.Healthy {
		t.Fatalf("revived shard unhealthy: %+v", h)
	}
	if got := c.Router().Stats().Revived; got != 1 {
		t.Fatalf("Stats.Revived = %d, want 1", got)
	}
	if d := c.Router().Degraded(); len(d) != 0 {
		t.Fatalf("degraded after revive: %v", d)
	}
	assertOracle(t, c, qs, want, "after revive")
}

// TestClusterRebuildFromPeers destroys an interior band's media outright
// and rebuilds it from the peers' replicated bands.
func TestClusterRebuildFromPeers(t *testing.T) {
	env := NewMemEnv(512)
	ctx := context.Background()
	ms := clusterMotions(300)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	cfg := testClusterConfig()
	cfg.Policy.AllowPartial = true
	c, err := OpenCluster(env, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	wantLen := c.Router().Shard(1).Len()

	if err := c.RebuildFromPeers(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if got := c.Router().Shard(1).Len(); got != wantLen {
		t.Fatalf("rebuilt shard holds %d motions, want %d", got, wantLen)
	}
	assertOracle(t, c, qs, want, "after peer rebuild")
}

// TestClusterDirEnv exercises the real file-backed environment end to
// end: build, crash, recover from disk.
func TestClusterDirEnv(t *testing.T) {
	env, err := NewDirEnv(t.TempDir(), 512)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	ms := clusterMotions(200)
	qs := clusterQueries()
	want := oracleAnswers(ms, qs)

	c, err := OpenCluster(env, testClusterConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BulkLoad(ctx, ms); err != nil {
		t.Fatal(err)
	}
	if err := c.Split(ctx, 0, 250); err != nil {
		t.Fatal(err)
	}
	assertOracle(t, c, qs, want, "file-backed, live")
	// Clean close this time: files must reopen all the same.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCluster(env, testClusterConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Bands() != 3 {
		t.Fatalf("recovered bands = %d, want 3", c2.Bands())
	}
	assertOracle(t, c2, qs, want, "file-backed, reopened")
}
