package shard

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// Shard durability has two durable records, both updated inside the same
// WAL batch as the index mutation they describe:
//
//   - the superblock (a page chain, magic "MOBIDXSB"): the serialized
//     core.DualMeta — tree roots, heights, sizes per rotation generation —
//     plus the page id of the motion catalog head. Open reads it and
//     reattaches the index with core.AttachDualBPlus.
//
//   - the motion catalog (a linked list of record pages starting at the
//     head the superblock names): an append-only log of insert/delete
//     motion records. The dual transform is not invertible in a way that
//     preserves residence intervals and rotation epochs, so the original
//     (OID, Y0, T0, V) tuples cannot be recovered from the trees; the
//     catalog is the exact source for split/migrate enumeration and for
//     rebuilding a peer's replicated bands. It compacts itself when
//     tombstoned records outnumber live ones.

const (
	sbMagic  = "MOBIDXSB"
	catMagic = "MOBIDXCA"

	// sbVersion 2 added the flushed watermark (ingest tier). Version-1
	// superblocks still decode: they predate the tier, so their base
	// index covers the whole catalog (flushed = records).
	sbVersion = 2

	// sbFlushedAll is the decoded flushed value of a v1 superblock: the
	// caller resolves it to the catalog's record count after attach.
	sbFlushedAll = -1

	// catRecLen is op(1) + oid(8) + y0/t0/v(3×8).
	catRecLen = 33

	// catHeaderLen is next(4) + used(4); a trailing CRC closes the page.
	catHeaderLen = 8

	catOpInsert = 1
	catOpDelete = 2
)

func catCap(pageSize int) int {
	n := (pageSize - catHeaderLen - 4) / catRecLen
	return n * catRecLen
}

// ---------------------------------------------------------------------------
// Superblock codec
// ---------------------------------------------------------------------------

type superblock struct {
	catHead pager.PageID
	// flushed is the ingest-tier watermark: the base index covers exactly
	// the first flushed catalog records; the suffix past it is the write
	// tier's delta, replayed into the memtable on recovery. Shards without
	// a tier keep flushed equal to the record count. Decoding a version-1
	// superblock yields sbFlushedAll.
	flushed int
	meta    core.DualMeta
}

func encodeSuperblock(sb superblock) []byte {
	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	tree := func(m bptree.Meta) {
		u32(uint32(m.Root))
		u32(uint32(m.Height))
		u64(uint64(m.Size))
	}
	u32(sbVersion)
	u32(uint32(sb.catHead))
	u64(uint64(sb.flushed))
	u32(uint32(len(sb.meta.Gens)))
	for _, g := range sb.meta.Gens {
		u64(uint64(g.Epoch))
		u64(uint64(g.Size))
		u32(uint32(len(g.Pos)))
		for i := range g.Pos {
			tree(g.Pos[i])
			tree(g.Neg[i])
			tree(g.Sub[i])
		}
	}
	return buf
}

func decodeSuperblock(buf []byte) (superblock, error) {
	var sb superblock
	corrupt := func(what string) (superblock, error) {
		return superblock{}, fmt.Errorf("shard: superblock: %s: %w", what, pager.ErrPageCorrupt)
	}
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}
	tree := func() (bptree.Meta, bool) {
		r, ok1 := u32()
		h, ok2 := u32()
		n, ok3 := u64()
		return bptree.Meta{Root: pager.PageID(r), Height: int(h), Size: int(n)}, ok1 && ok2 && ok3
	}
	ver, ok := u32()
	if !ok || (ver != 1 && ver != sbVersion) {
		return corrupt(fmt.Sprintf("version %d", ver))
	}
	head, ok := u32()
	if !ok {
		return corrupt("truncated catalog head")
	}
	sb.catHead = pager.PageID(head)
	sb.flushed = sbFlushedAll
	if ver >= 2 {
		fl, ok := u64()
		if !ok || fl > 1<<40 {
			return corrupt("flushed watermark")
		}
		sb.flushed = int(fl)
	}
	nGens, ok := u32()
	if !ok || nGens > 1<<20 {
		return corrupt("generation count")
	}
	for gi := uint32(0); gi < nGens; gi++ {
		epoch, ok1 := u64()
		size, ok2 := u64()
		c, ok3 := u32()
		if !ok1 || !ok2 || !ok3 || c == 0 || c > 1<<16 {
			return corrupt(fmt.Sprintf("generation %d header", gi))
		}
		g := core.DualGenMeta{
			Epoch: int64(epoch),
			Size:  int(size),
			Pos:   make([]bptree.Meta, 0, c),
			Neg:   make([]bptree.Meta, 0, c),
			Sub:   make([]bptree.Meta, 0, c),
		}
		for i := uint32(0); i < c; i++ {
			p, ok1 := tree()
			n, ok2 := tree()
			s, ok3 := tree()
			if !ok1 || !ok2 || !ok3 {
				return corrupt(fmt.Sprintf("generation %d trees", gi))
			}
			g.Pos = append(g.Pos, p)
			g.Neg = append(g.Neg, n)
			g.Sub = append(g.Sub, s)
		}
		sb.meta.Gens = append(sb.meta.Gens, g)
	}
	if off != len(buf) {
		return corrupt("trailing bytes")
	}
	return sb, nil
}

// ---------------------------------------------------------------------------
// Motion catalog
// ---------------------------------------------------------------------------

// catalog is the shard's durable motion log. All mutating methods must run
// inside the shard's open WAL batch; the in-memory cursor fields (pages,
// tailUsed, counters) mirror the staged state and are only trusted after
// the batch commits — a failed batch quarantines the owning shard, which
// never touches the catalog again.
type catalog struct {
	store    pager.Store
	head     pager.PageID
	pages    []pager.PageID // full chain including head
	tailUsed int            // bytes of records in the tail page
	live     int            // records currently live (inserts minus deletes)
	records  int            // total records in the log
}

// initCatalog allocates an empty catalog inside the caller's open batch.
func initCatalog(store pager.Store) (*catalog, error) {
	p, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	c := &catalog{store: store, head: p.ID, pages: []pager.PageID{p.ID}}
	if err := c.writePage(p.ID, pager.NilPage, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// attachCatalog walks the chain from head, rebuilding the page list and
// the live/total counters.
func attachCatalog(store pager.Store, head pager.PageID) (*catalog, error) {
	c := &catalog{store: store, head: head}
	id := head
	for hops := 0; ; hops++ {
		if hops > 1<<22 {
			return nil, fmt.Errorf("shard: catalog from %d: cycle: %w", head, pager.ErrPageCorrupt)
		}
		recs, next, err := c.readPage(id)
		if err != nil {
			return nil, err
		}
		c.pages = append(c.pages, id)
		c.tailUsed = len(recs)
		c.records += len(recs) / catRecLen
		for off := 0; off < len(recs); off += catRecLen {
			switch recs[off] {
			case catOpInsert:
				c.live++
			case catOpDelete:
				c.live--
			default:
				return nil, fmt.Errorf("shard: catalog page %d: bad op %d: %w",
					id, recs[off], pager.ErrPageCorrupt)
			}
		}
		if next == pager.NilPage {
			return c, nil
		}
		id = next
	}
}

func (c *catalog) readPage(id pager.PageID) (recs []byte, next pager.PageID, err error) {
	p, err := c.store.Read(id)
	if err != nil {
		return nil, 0, err
	}
	data := p.Data
	if !catPageCRCOK(data) {
		return nil, 0, fmt.Errorf("shard: catalog page %d: bad checksum: %w", id, pager.ErrPageCorrupt)
	}
	next = pager.PageID(binary.LittleEndian.Uint32(data[0:4]))
	used := int(binary.LittleEndian.Uint32(data[4:8]))
	if used < 0 || used > catCap(len(data)) || used%catRecLen != 0 {
		return nil, 0, fmt.Errorf("shard: catalog page %d: used %d: %w", id, used, pager.ErrPageCorrupt)
	}
	return data[catHeaderLen : catHeaderLen+used], next, nil
}

func catPageCRCOK(data []byte) bool {
	return chainPageCRCOK(data)
}

func catPageCRC(data []byte) uint32 {
	return crc32.Checksum(data[:len(data)-4], castagnoli)
}

func (c *catalog) writePage(id, next pager.PageID, recs []byte) error {
	pageSize := c.store.PageSize()
	data := make([]byte, pageSize)
	binary.LittleEndian.PutUint32(data[0:4], uint32(next))
	binary.LittleEndian.PutUint32(data[4:8], uint32(len(recs)))
	copy(data[catHeaderLen:], recs)
	binary.LittleEndian.PutUint32(data[pageSize-4:], catPageCRC(data))
	return c.store.Write(&pager.Page{ID: id, Data: data})
}

func encodeCatRec(buf []byte, op byte, m dual.Motion) []byte {
	buf = append(buf, op)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.OID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Y0))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.T0))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.V))
	return buf
}

func decodeCatRec(rec []byte) (op byte, m dual.Motion) {
	op = rec[0]
	m.OID = dual.OID(binary.LittleEndian.Uint64(rec[1:9]))
	m.Y0 = math.Float64frombits(binary.LittleEndian.Uint64(rec[9:17]))
	m.T0 = math.Float64frombits(binary.LittleEndian.Uint64(rec[17:25]))
	m.V = math.Float64frombits(binary.LittleEndian.Uint64(rec[25:33]))
	return op, m
}

// append logs the ops and compacts the chain once tombstoned records
// outnumber live ones — the flat (tierless) write path. Must run in the
// owner's open batch, after the ops were applied to the index.
func (c *catalog) append(ops []Op) error {
	if err := c.appendRaw(ops); err != nil {
		return err
	}
	if dead := c.records - c.live; dead > c.live+64 {
		ms, err := c.motions()
		if err != nil {
			return err
		}
		return c.rewrite(ms)
	}
	return nil
}

// appendRaw logs the ops without ever compacting: the ingest write path,
// where the base-covers-prefix invariant (superblock.flushed) forbids
// reordering the log — compaction happens only at merge time, when the
// whole catalog is rewritten from the tier's base. Must run in the
// owner's open batch.
func (c *catalog) appendRaw(ops []Op) error {
	if len(ops) == 0 {
		return nil
	}
	cap_ := catCap(c.store.PageSize())
	tail := c.pages[len(c.pages)-1]
	recs, _, err := c.readPage(tail)
	if err != nil {
		return err
	}
	// Work on a copy: recs aliases the store's page buffer.
	cur := append(make([]byte, 0, cap_), recs...)
	for _, op := range ops {
		if len(cur) == cap_ {
			p, err := c.store.Allocate()
			if err != nil {
				return err
			}
			// Seal the full page, linking it to its new successor.
			if err := c.writePage(tail, p.ID, cur); err != nil {
				return err
			}
			tail = p.ID
			c.pages = append(c.pages, tail)
			cur = cur[:0]
		}
		opByte := byte(catOpDelete)
		if op.Insert {
			opByte = catOpInsert
			c.live++
		} else {
			c.live--
		}
		cur = encodeCatRec(cur, opByte, op.M)
		c.records++
	}
	if err := c.writePage(tail, pager.NilPage, cur); err != nil {
		return err
	}
	c.tailUsed = len(cur)
	return nil
}

// ops decodes the whole log in append order — the recovery feed for the
// ingest tier, which splits it at the flushed watermark into the base
// prefix and the delta suffix.
func (c *catalog) ops() ([]Op, error) {
	out := make([]Op, 0, c.records)
	for _, id := range c.pages {
		recs, _, err := c.readPage(id)
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(recs); off += catRecLen {
			op, m := decodeCatRec(recs[off : off+catRecLen])
			out = append(out, Op{Insert: op == catOpInsert, M: m})
		}
	}
	return out, nil
}

// motionsOfOps replays a slice of ops into the live motion multiset it
// describes (insertion order preserved for the surviving inserts is not
// guaranteed; the result is unsorted).
func motionsOfOps(ops []Op) ([]dual.Motion, error) {
	counts := make(map[dual.Motion]int)
	for _, op := range ops {
		if op.Insert {
			counts[op.M]++
		} else {
			counts[op.M]--
		}
	}
	var ms []dual.Motion
	for m, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("shard: catalog prefix: motion %d deleted more than inserted: %w",
				m.OID, pager.ErrPageCorrupt)
		}
		for i := 0; i < n; i++ {
			ms = append(ms, m)
		}
	}
	return ms, nil
}

// rewrite replaces the log with plain inserts of ms (the BulkLoad and
// compaction path). The head page id is stable — the superblock need not
// change for a rewrite — while every overflow page is freed and
// reallocated. Must run in the owner's open batch.
func (c *catalog) rewrite(ms []dual.Motion) error {
	for _, id := range c.pages[1:] {
		if err := c.store.Free(id); err != nil {
			return err
		}
	}
	c.pages = c.pages[:1]
	cap_ := catCap(c.store.PageSize())
	var cur []byte
	tail := c.head
	for _, m := range ms {
		if len(cur) == cap_ {
			p, err := c.store.Allocate()
			if err != nil {
				return err
			}
			if err := c.writePage(tail, p.ID, cur); err != nil {
				return err
			}
			tail = p.ID
			c.pages = append(c.pages, tail)
			cur = cur[:0]
		}
		cur = encodeCatRec(cur, catOpInsert, m)
	}
	if err := c.writePage(tail, pager.NilPage, cur); err != nil {
		return err
	}
	c.tailUsed = len(cur)
	c.live = len(ms)
	c.records = len(ms)
	return nil
}

// motions replays the log into the live motion multiset, sorted by
// (OID, T0, Y0, V) so identical shard states enumerate identically.
func (c *catalog) motions() ([]dual.Motion, error) {
	counts := make(map[dual.Motion]int)
	for _, id := range c.pages {
		recs, _, err := c.readPage(id)
		if err != nil {
			return nil, err
		}
		for off := 0; off < len(recs); off += catRecLen {
			op, m := decodeCatRec(recs[off : off+catRecLen])
			if op == catOpInsert {
				counts[m]++
			} else {
				counts[m]--
			}
		}
	}
	var ms []dual.Motion
	for m, n := range counts {
		if n < 0 {
			return nil, fmt.Errorf("shard: catalog: motion %d deleted more than inserted: %w",
				m.OID, pager.ErrPageCorrupt)
		}
		for i := 0; i < n; i++ {
			ms = append(ms, m)
		}
	}
	sort.Slice(ms, func(i, j int) bool {
		a, b := ms[i], ms[j]
		if a.OID != b.OID {
			return a.OID < b.OID
		}
		if a.T0 != b.T0 {
			return a.T0 < b.T0
		}
		if a.Y0 != b.Y0 {
			return a.Y0 < b.Y0
		}
		return a.V < b.V
	})
	return ms, nil
}
