package shard

import (
	"context"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func testTerrain() dual.Terrain { return dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66} }

func testMotion(i int) dual.Motion {
	v := 0.2 + 0.2*float64(i%7)
	if i%2 == 1 {
		v = -v
	}
	return dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), V: v}
}

// TestShardOpenRecovery writes through a shard, simulates a crash by
// abandoning the WALStore (no Close, so nothing is checkpointed), reopens
// the surviving base+log, and checks the recovered shard answers
// byte-identically and enumerates the exact motion multiset.
func TestShardOpenRecovery(t *testing.T) {
	cfg := Config{ID: 3, Terrain: testTerrain(), PageSize: 512}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	s, err := Open(cfg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ops []Op
	for i := 0; i < 200; i++ {
		ops = append(ops, Op{Insert: true, M: testMotion(i)})
	}
	if err := s.Apply(ctx, ops); err != nil {
		t.Fatal(err)
	}
	// Delete a few, then update (delete+insert) a few more, across several
	// batches so the catalog sees multi-batch history.
	for i := 0; i < 30; i += 3 {
		if err := s.Apply(ctx, []Op{{Insert: false, M: testMotion(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 100; i < 110; i++ {
		m := testMotion(i)
		upd := m
		upd.T0 = 50
		upd.Y0 += 3
		err := s.Apply(ctx, []Op{{Insert: false, M: m}, {Insert: true, M: upd}})
		if err != nil {
			t.Fatal(err)
		}
	}
	wantLen := s.Len()
	wantMs, err := s.Motions()
	if err != nil {
		t.Fatal(err)
	}
	if len(wantMs) != wantLen {
		t.Fatalf("catalog enumerates %d motions, index holds %d", len(wantMs), wantLen)
	}
	q := dual.MORQuery{Y1: 100, Y2: 600, T1: 10, T2: 60}
	want, err := s.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: drop the shard without closing; reopen over surviving media.
	s2, err := Open(cfg, base, pager.NewMemLogFrom(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", s2.Len(), wantLen)
	}
	got, err := s2.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered query: %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered query: result %d = %d, want %d", i, got[i], want[i])
		}
	}
	gotMs, err := s2.Motions()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMs) != len(wantMs) {
		t.Fatalf("recovered catalog: %d motions, want %d", len(gotMs), len(wantMs))
	}
	for i := range gotMs {
		if gotMs[i] != wantMs[i] {
			t.Fatalf("recovered catalog: motion %d = %+v, want %+v", i, gotMs[i], wantMs[i])
		}
	}

	// The recovered shard stays writable.
	if err := s2.Apply(ctx, []Op{{Insert: true, M: dual.Motion{OID: 9999, Y0: 1, V: 0.5}}}); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != wantLen+1 {
		t.Fatalf("post-recovery insert: Len = %d, want %d", s2.Len(), wantLen+1)
	}
}

// TestShardBulkLoadRecovery checks the catalog rewrite path: BulkLoad
// replaces contents, then a crash-reopen must recover exactly the bulk
// image (and the catalog must have compacted to plain inserts).
func TestShardBulkLoadRecovery(t *testing.T) {
	cfg := Config{ID: 0, Terrain: testTerrain(), PageSize: 512}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	s, err := Open(cfg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var first []Op
	for i := 0; i < 50; i++ {
		first = append(first, Op{Insert: true, M: testMotion(i)})
	}
	if err := s.Apply(ctx, first); err != nil {
		t.Fatal(err)
	}
	var bulk []dual.Motion
	for i := 200; i < 320; i++ {
		bulk = append(bulk, testMotion(i))
	}
	if err := s.BulkLoad(ctx, bulk); err != nil {
		t.Fatal(err)
	}
	if s.cat.records != len(bulk) || s.cat.live != len(bulk) {
		t.Fatalf("catalog after bulk: records=%d live=%d, want both %d",
			s.cat.records, s.cat.live, len(bulk))
	}

	s2, err := Open(cfg, base, pager.NewMemLogFrom(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(bulk) {
		t.Fatalf("recovered Len = %d, want %d", s2.Len(), len(bulk))
	}
	ms, err := s2.Motions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != len(bulk) {
		t.Fatalf("recovered catalog: %d motions, want %d", len(ms), len(bulk))
	}
}

// TestCatalogCompaction drives enough deletes through a shard that the
// catalog's dead-record threshold trips, and checks the log shrinks while
// the live multiset is preserved.
func TestCatalogCompaction(t *testing.T) {
	cfg := Config{ID: 0, Terrain: testTerrain(), PageSize: 512}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	// Insert 40, then churn: delete+reinsert the same handful many times.
	var ops []Op
	for i := 0; i < 40; i++ {
		ops = append(ops, Op{Insert: true, M: testMotion(i)})
	}
	if err := s.Apply(ctx, ops); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		m := testMotion(round % 5)
		err := s.Apply(ctx, []Op{{Insert: false, M: m}, {Insert: true, M: m}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if dead := s.cat.records - s.cat.live; dead > s.cat.live+64 {
		t.Fatalf("catalog never compacted: records=%d live=%d", s.cat.records, s.cat.live)
	}
	if s.cat.live != 40 || s.Len() != 40 {
		t.Fatalf("live=%d Len=%d, want 40/40", s.cat.live, s.Len())
	}
	ms, err := s.Motions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 40 {
		t.Fatalf("Motions() = %d, want 40", len(ms))
	}
}
