package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mobidx/internal/pager"
)

// Media is one durable unit: a base page store plus its write-ahead log.
// Every shard owns one, and so does the cluster manifest.
type Media struct {
	Base pager.Store
	Log  pager.LogFile
}

// Env names and provisions durable media. OpenMedia creates fresh media
// the first time a name is seen and reopens the surviving bytes on every
// later call — which is exactly a reboot, so Cluster.Open recovers
// whatever the environment preserved. DropMedia irrevocably deletes a
// name (retired migration sources); dropping an unknown name is a no-op.
type Env interface {
	OpenMedia(name string) (Media, error)
	DropMedia(name string) error
}

// MemEnv is the in-memory Env: media survive as long as the value does,
// so abandoning the shards built on them and calling Cluster.Open again
// simulates a process crash with a durable disk. Safe for concurrent use.
type MemEnv struct {
	pageSize int

	mu    sync.Mutex
	media map[string]Media
}

// NewMemEnv builds an in-memory environment provisioning stores with the
// given page size (0 selects pager.DefaultPageSize).
func NewMemEnv(pageSize int) *MemEnv {
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	return &MemEnv{pageSize: pageSize, media: make(map[string]Media)}
}

// OpenMedia implements Env.
func (e *MemEnv) OpenMedia(name string) (Media, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.media[name]; ok {
		return m, nil
	}
	m := Media{Base: pager.NewMemStore(e.pageSize), Log: pager.NewMemLog()}
	e.media[name] = m
	return m, nil
}

// DropMedia implements Env.
func (e *MemEnv) DropMedia(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.media, name)
	return nil
}

// DirEnv is the file-backed Env: media named n live at dir/n.pages and
// dir/n.log. Reopening after a real process crash recovers whatever the
// filesystem made durable.
type DirEnv struct {
	dir      string
	pageSize int
}

// NewDirEnv builds a file-backed environment rooted at dir (created if
// absent); pageSize applies to newly created stores only (0 selects
// pager.DefaultPageSize).
func NewDirEnv(dir string, pageSize int) (*DirEnv, error) {
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: env dir: %w", err)
	}
	return &DirEnv{dir: dir, pageSize: pageSize}, nil
}

func (e *DirEnv) paths(name string) (pages, log string) {
	return filepath.Join(e.dir, name+".pages"), filepath.Join(e.dir, name+".log")
}

// OpenMedia implements Env.
func (e *DirEnv) OpenMedia(name string) (Media, error) {
	pagesPath, logPath := e.paths(name)
	var base pager.Store
	if _, err := os.Stat(pagesPath); err == nil {
		fs, err := pager.OpenFileStore(pagesPath)
		if err != nil {
			return Media{}, err
		}
		base = fs
	} else if errors.Is(err, os.ErrNotExist) {
		fs, err := pager.NewFileStore(pagesPath, e.pageSize)
		if err != nil {
			return Media{}, err
		}
		base = fs
	} else {
		return Media{}, fmt.Errorf("shard: env stat %s: %w", pagesPath, err)
	}
	log, err := pager.OpenFileLog(logPath)
	if err != nil {
		if c, ok := base.(interface{ Close() error }); ok {
			err = errors.Join(err, c.Close())
		}
		return Media{}, err
	}
	return Media{Base: base, Log: log}, nil
}

// DropMedia implements Env.
func (e *DirEnv) DropMedia(name string) error {
	pagesPath, logPath := e.paths(name)
	var errs []error
	for _, p := range []string{pagesPath, logPath} {
		if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// shardMediaName is the stable name of a shard store's media. Store ids
// are allocated by the manifest and never reused, so a retired source's
// media can be dropped without racing a younger shard.
func shardMediaName(storeID int) string { return fmt.Sprintf("shard-%d", storeID) }

// manifestMediaName is the cluster manifest's media name.
const manifestMediaName = "manifest"
