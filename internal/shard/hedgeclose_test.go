package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

// TestShardCloseDuringHedgedReads closes a shard under live hedged
// traffic — exactly what Cluster.Revive does to a wounded shard on a
// serving router. Every read against shard 0 stalls past the hedge
// trigger, so each routed query holds two in-flight attempts (primary +
// hedge) when Close lands. The test is leakcheck-gated: neither attempt
// goroutine may outlive its query (the hedge loser drains through a
// buffered channel, Close blocks on the serving latch until in-flight
// reads finish), and every answer must stay typed — full, or a
// *PartialError missing only the closed shard.
func TestShardCloseDuringHedgedReads(t *testing.T) {
	leakcheck.Check(t)
	pol := Policy{
		HedgeAfter:   100 * time.Microsecond,
		AllowPartial: true,
	}
	r, faults := cluster(t, 2, 2, pol)
	ms := motions1D(128)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	// Every read on shard 0 becomes a straggler: slow enough that hedges
	// launch, fast enough that Close's latch wait stays short.
	faults[0].SetConfig(pager.FaultConfig{
		Seed:  100,
		Read:  pager.OpFaults{FailEvery: 1},
		Stall: 2 * time.Millisecond,
	})

	errc := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 24; i++ {
				_, err := r.Query(context.Background(), queries1D[i%len(queries1D)])
				if err == nil {
					continue
				}
				var pe *PartialError
				if !errors.As(err, &pe) {
					select {
					case errc <- fmt.Errorf("untyped query failure: %w", err):
					default:
					}
					return
				}
				for _, id := range pe.Missing {
					if id != 0 {
						select {
						case errc <- fmt.Errorf("shard %d missing, only 0 was closed: %w", id, err):
						default:
						}
						return
					}
				}
			}
		}()
	}

	// Wait until at least one hedge is actually in flight, then close the
	// shard under it.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats().Hedges == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no hedge ever launched against the stalled shard")
		}
		time.Sleep(100 * time.Microsecond)
	}
	if err := r.Shard(0).Close(); err != nil {
		t.Errorf("close under hedged reads: %v", err)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if h := r.Shard(0).Health(); h.Healthy {
		t.Fatalf("closed shard reports healthy: %+v", h)
	}
	// The surviving shard keeps serving; the closed one degrades typed.
	_, err := r.Query(context.Background(), queries1D[1])
	var pe *PartialError
	if err != nil && !errors.As(err, &pe) {
		t.Fatalf("post-close query: untyped failure %v", err)
	}
}
