package shard

import (
	"context"
	"strings"
	"testing"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

// tinyIngest forces freezes and merges every few batches, so the
// differential and recovery tests constantly observe mid-flush states.
func tinyIngest() *IngestConfig {
	return &IngestConfig{MemtableFlush: 24, MaxRuns: 2}
}

// TestShardIngestDifferentialWorkload is the ingest-tier sharding gate:
// the §5 simulator drives an unsharded flat oracle, a single ingest
// shard, and ingest-tier routed clusters of 1 and 4 shards in lockstep;
// every query at every tick must be byte-identical across all of them at
// worker counts 1, 2 and 8 — including the many states where the tier
// holds frozen runs and a partially filled memtable.
func TestShardIngestDifferentialWorkload(t *testing.T) {
	leakcheck.Check(t)
	sim, err := workload.NewSimulator(workload.Params{
		N: 250, Seed: 77, Terrain: terrain1D, UpdatesPerTick: 40, Ticks: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := newOracle(t)
	single, err := New(Config{Terrain: terrain1D, Ingest: tinyIngest()})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	routers := map[string]*Router{}
	for _, topo := range []struct {
		name    string
		shards  int
		workers int
	}{
		{"1shard-1w", 1, 1}, {"1shard-8w", 1, 8},
		{"4shard-1w", 4, 1}, {"4shard-2w", 4, 2}, {"4shard-8w", 4, 8},
	} {
		r, err := NewCluster(Config{Terrain: terrain1D, Ingest: tinyIngest()},
			topo.shards, core.NewExecutor(topo.workers), Policy{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		routers[topo.name] = r
	}
	ctx := context.Background()
	apply := func(op workload.Op) error {
		var err error
		if op.Insert {
			err = oracle.Insert(op.Motion)
		} else {
			err = oracle.Delete(op.Motion)
		}
		if err != nil {
			return err
		}
		ops := []Op{{Insert: op.Insert, M: op.Motion}}
		if err := single.Apply(ctx, ops); err != nil {
			return err
		}
		for _, r := range routers {
			if err := r.Apply(ctx, ops); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sim.Bootstrap(apply); err != nil {
		t.Fatal(err)
	}
	seqExec := core.NewExecutor(1)
	check := func() {
		t.Helper()
		for _, q := range sim.Queries(workload.QueryMix{PerSlot: 4, YQMax: 300, TW: 60}) {
			seq, err := oracle.QueryParallelCtx(ctx, seqExec, q)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(seq)
			got, err := single.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(got) != want {
				t.Fatalf("single ingest shard diverges on %+v: %q vs %q (stats %+v)",
					q, fingerprint(got), want, single.tier.Stats())
			}
			for name, r := range routers {
				res, err := r.Query(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if fingerprint(res) != want {
					t.Fatalf("%s diverges on %+v: %q vs %q", name, q, fingerprint(res), want)
				}
			}
		}
	}
	check()
	for tick := 0; tick < sim.Params().Ticks; tick++ {
		if err := sim.Tick(apply); err != nil {
			t.Fatal(err)
		}
		check()
	}
	st := single.tier.Stats()
	if st.Freezes == 0 || st.Merges == 0 {
		t.Fatalf("tier thresholds never fired (stats %+v); the differential never saw a mid-flush state", st)
	}
}

// TestShardIngestRecovery crashes an ingest shard (no Close) with a
// non-empty delta — flushed strictly below the record count — and checks
// the reopened shard reproduces the exact state: length, catalog
// enumeration, queries, and that it keeps accepting writes that later
// merge.
func TestShardIngestRecovery(t *testing.T) {
	cfg := Config{ID: 1, Terrain: testTerrain(), PageSize: 512, Ingest: tinyIngest()}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	s, err := Open(cfg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Enough updates to cross several freeze and at least one merge
	// boundary, then a few more so a delta suffix remains.
	for i := 0; i < 180; i++ {
		if err := s.Apply(ctx, []Op{{Insert: true, M: testMotion(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 40; i += 2 {
		m := testMotion(i)
		upd := m
		upd.T0, upd.Y0 = 50, m.Y0+1
		if err := s.Apply(ctx, []Op{{Insert: false, M: m}, {Insert: true, M: upd}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.tier.Stats(); st.Merges == 0 {
		t.Fatalf("workload never merged: %+v", st)
	}
	if s.flushed >= s.cat.records {
		t.Fatalf("no delta suffix to recover (flushed=%d records=%d); tune the workload",
			s.flushed, s.cat.records)
	}
	wantLen := s.Len()
	wantMs, err := s.Motions()
	if err != nil {
		t.Fatal(err)
	}
	q := dual.MORQuery{Y1: 100, Y2: 600, T1: 60, T2: 120}
	want, err := s.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}

	// Crash-reopen over surviving media.
	s2, err := Open(cfg, base, pager.NewMemLogFrom(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != wantLen {
		t.Fatalf("recovered Len = %d, want %d", s2.Len(), wantLen)
	}
	if s2.flushed != s.flushed || s2.cat.records != s.cat.records {
		t.Fatalf("recovered watermark %d/%d, want %d/%d",
			s2.flushed, s2.cat.records, s.flushed, s.cat.records)
	}
	got, err := s2.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("recovered query diverges: %q vs %q", fingerprint(got), fingerprint(want))
	}
	gotMs, err := s2.Motions()
	if err != nil {
		t.Fatal(err)
	}
	if len(gotMs) != len(wantMs) {
		t.Fatalf("recovered catalog: %d motions, want %d", len(gotMs), len(wantMs))
	}
	for i := range gotMs {
		if gotMs[i] != wantMs[i] {
			t.Fatalf("recovered catalog motion %d = %+v, want %+v", i, gotMs[i], wantMs[i])
		}
	}
	// The recovered shard keeps ingesting and eventually merges again.
	for i := 300; i < 400; i++ {
		if err := s2.Apply(ctx, []Op{{Insert: true, M: testMotion(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s2.tier.Stats(); st.Merges == 0 {
		t.Fatalf("recovered shard never merged: %+v", st)
	}
}

// TestShardIngestOpenWithoutConfig: durable media carrying an unmerged
// ingest delta must refuse to open as a flat shard — silently serving the
// base prefix would drop committed writes.
func TestShardIngestOpenWithoutConfig(t *testing.T) {
	cfg := Config{ID: 2, Terrain: testTerrain(), PageSize: 512, Ingest: tinyIngest()}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	s, err := Open(cfg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ { // below the flush threshold: pure delta
		if err := s.Apply(ctx, []Op{{Insert: true, M: testMotion(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if s.flushed != 0 {
		t.Fatalf("flushed=%d, want 0 (nothing merged yet)", s.flushed)
	}
	flat := cfg
	flat.Ingest = nil
	_, err = Open(flat, base, pager.NewMemLogFrom(log.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "ingest delta") {
		t.Fatalf("flat open of ingest media: %v, want ingest-delta refusal", err)
	}
	// With the tier configured, the same media opens fine.
	s2, err := Open(cfg, base, pager.NewMemLogFrom(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("recovered Len = %d, want 10", s2.Len())
	}
}

// TestShardIngestBulkLoad: BulkLoad through the tier replaces everything
// atomically and advances the watermark to cover the whole catalog.
func TestShardIngestBulkLoad(t *testing.T) {
	s, err := New(Config{Terrain: testTerrain(), Ingest: tinyIngest()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := s.Apply(ctx, []Op{{Insert: true, M: testMotion(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	var bulk []dual.Motion
	for i := 500; i < 560; i++ {
		bulk = append(bulk, testMotion(i))
	}
	if err := s.BulkLoad(ctx, bulk); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(bulk) {
		t.Fatalf("after BulkLoad Len=%d, want %d", s.Len(), len(bulk))
	}
	if s.flushed != s.cat.records || s.cat.records != len(bulk) {
		t.Fatalf("after BulkLoad flushed=%d records=%d, want both %d",
			s.flushed, s.cat.records, len(bulk))
	}
	if st := s.tier.Stats(); st.MemLen != 0 || st.Runs != 0 {
		t.Fatalf("BulkLoad left delta behind: %+v", st)
	}
}
