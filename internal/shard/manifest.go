package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"mobidx/internal/pager"
)

// The cluster manifest is the single authority on topology: which store
// serves which band, under which epoch, and whether a migration is in
// flight. It lives in its own tiny WAL-backed media ("manifest"), written
// as one atomic batch per change — so a crash at any instant recovers to
// exactly one manifest, and therefore exactly one topology: the old one
// or the new one, never a mix. The epoch increments only at a migration
// flip, giving tests a monotonic witness that no intermediate topology
// was ever published.

const manMagic = "MOBIDXMF"

const manVersion = 1

// Migration states. A migration is a monotone three-step record:
// none → prepared (receiver store allocated, nothing published) →
// flipped (new topology published, source not yet trimmed) → none.
const (
	migNone = iota
	migPrepared
	migFlipped
)

// bandEntry maps one band to its serving store. Hi is the band's upper
// bound; the entries partition [0, YMax] in ascending order, so the cut
// list of the equivalent Partitioner is every Hi but the last.
type bandEntry struct {
	Store int
	Hi    float64
}

// migRecord is the in-flight migration, if any.
type migRecord struct {
	State    int     // migNone / migPrepared / migFlipped
	Band     int     // band being split (index in the PRE-flip topology)
	Cut      float64 // split position, strictly inside the band
	NewStore int     // store id allocated for the receiver
}

// manifest is the durable cluster topology record.
type manifest struct {
	Epoch     uint64 // bumps exactly once per completed flip
	NextStore int    // store-id allocator; ids are never reused
	Bands     []bandEntry
	Mig       migRecord
}

func encodeManifest(m manifest) []byte {
	var buf []byte
	u32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	u32(manVersion)
	u64(m.Epoch)
	u32(uint32(m.NextStore))
	u32(uint32(len(m.Bands)))
	for _, b := range m.Bands {
		u32(uint32(b.Store))
		f64(b.Hi)
	}
	u32(uint32(m.Mig.State))
	u32(uint32(m.Mig.Band))
	f64(m.Mig.Cut)
	u32(uint32(m.Mig.NewStore))
	return buf
}

func decodeManifest(buf []byte) (manifest, error) {
	var m manifest
	corrupt := func(what string) (manifest, error) {
		return manifest{}, fmt.Errorf("shard: manifest: %s: %w", what, pager.ErrPageCorrupt)
	}
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		return v, true
	}
	f64 := func() (float64, bool) {
		v, ok := u64()
		return math.Float64frombits(v), ok
	}
	ver, ok := u32()
	if !ok || ver != manVersion {
		return corrupt(fmt.Sprintf("version %d", ver))
	}
	epoch, ok1 := u64()
	next, ok2 := u32()
	nBands, ok3 := u32()
	if !ok1 || !ok2 || !ok3 || nBands == 0 || nBands > 1<<20 {
		return corrupt("header")
	}
	m.Epoch = epoch
	m.NextStore = int(next)
	prev := math.Inf(-1)
	for i := uint32(0); i < nBands; i++ {
		store, ok1 := u32()
		hi, ok2 := f64()
		if !ok1 || !ok2 {
			return corrupt(fmt.Sprintf("band %d", i))
		}
		if hi <= prev {
			return corrupt(fmt.Sprintf("band %d bound %v out of order", i, hi))
		}
		prev = hi
		m.Bands = append(m.Bands, bandEntry{Store: int(store), Hi: hi})
	}
	st, ok1 := u32()
	band, ok2 := u32()
	cut, ok3 := f64()
	newStore, ok4 := u32()
	if !ok1 || !ok2 || !ok3 || !ok4 || st > migFlipped {
		return corrupt("migration record")
	}
	m.Mig = migRecord{State: int(st), Band: int(band), Cut: cut, NewStore: int(newStore)}
	if off != len(buf) {
		return corrupt("trailing bytes")
	}
	return m, nil
}

// partitionerOf derives the Partitioner equivalent to the manifest's band
// table.
func (m manifest) partitionerOf() (*Partitioner, error) {
	yMax := m.Bands[len(m.Bands)-1].Hi
	cuts := make([]float64, 0, len(m.Bands)-1)
	for _, b := range m.Bands[:len(m.Bands)-1] {
		cuts = append(cuts, b.Hi)
	}
	return NewPartitionerCuts(yMax, cuts)
}

// manifestStore is the manifest's WAL-backed home: a page chain inside
// its own store, rewritten as one atomic batch per change.
type manifestStore struct {
	wal *pager.WALStore
	ch  *chain
}

// openManifestStore opens (or initializes) the manifest media and loads
// the current manifest. init is called to produce the first manifest when
// the media is fresh; it is not called on reopen.
func openManifestStore(media Media, init func() (manifest, error)) (*manifestStore, manifest, error) {
	wal, err := pager.OpenWALStore(media.Base, media.Log, pager.WALConfig{})
	if err != nil {
		return nil, manifest{}, fmt.Errorf("shard: manifest wal: %w", err)
	}
	fail := func(err error) (*manifestStore, manifest, error) {
		werr := wal.Close()
		if werr != nil {
			err = fmt.Errorf("%w (close: %v)", err, werr)
		}
		return nil, manifest{}, err
	}
	ch, err := findChainRoot(wal, manMagic)
	if err == nil {
		payload, err := ch.read()
		if err != nil {
			return fail(fmt.Errorf("shard: manifest read: %w", err))
		}
		m, err := decodeManifest(payload)
		if err != nil {
			return fail(err)
		}
		return &manifestStore{wal: wal, ch: ch}, m, nil
	}
	if !isChainNotFound(err) {
		return fail(fmt.Errorf("shard: manifest locate: %w", err))
	}
	m, err := init()
	if err != nil {
		return fail(err)
	}
	ms := &manifestStore{wal: wal}
	err = pager.RunBatch(wal, func() error {
		ch, cerr := initChain(wal, manMagic)
		if cerr != nil {
			return cerr
		}
		ms.ch = ch
		return ch.write(encodeManifest(m))
	})
	if err != nil {
		return fail(fmt.Errorf("shard: manifest init: %w", err))
	}
	return ms, m, nil
}

// save atomically replaces the durable manifest. On return the new
// manifest is committed and synced — the next reboot sees it.
func (s *manifestStore) save(m manifest) error {
	return pager.RunBatch(s.wal, func() error {
		return s.ch.write(encodeManifest(m))
	})
}

func (s *manifestStore) close() error { return s.wal.Close() }
