package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"mobidx/internal/pager"
)

// A page chain is the durability primitive the cluster lifecycle is built
// on: a small variable-length payload (a shard superblock, the cluster
// manifest) stored in a linked list of pages whose root never moves. The
// root is self-describing — an 8-byte magic plus a CRC-32C trailer — so a
// reopened store finds it with a bounded scan of the low page ids (the
// root is allocated in the component's very first batch, so its id is
// always small), with no reliance on store-specific metadata areas.
//
// Writes happen inside the caller's open WAL batch: the whole chain —
// root rewrite, overflow allocations, old-overflow frees — commits
// atomically with the data mutation it describes, which is what makes a
// crash recover to exactly-old or exactly-new state.

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// chainScanLimit bounds the root scan at open. Chain roots are allocated
// in a fresh store's first batch (right after the WAL watermark page), so
// their ids are single digits; 64 leaves generous slack.
const chainScanLimit = 64

// chainHeaderLen is magic(8) + next(4) + length(4); a trailing CRC closes
// each page.
const chainHeaderLen = 16

// errChainNotFound marks a scan that found no chain root.
var errChainNotFound = errors.New("shard: page chain root not found")

// isChainNotFound reports whether err means "fresh media, no chain yet".
func isChainNotFound(err error) bool { return errors.Is(err, errChainNotFound) }

// chain is one page chain bound to its store.
type chain struct {
	store    pager.Store
	magic    string // exactly 8 bytes
	root     pager.PageID
	overflow []pager.PageID // current pages after the root, in order
}

func chainCap(pageSize int) int { return pageSize - chainHeaderLen - 4 }

// initChain allocates a fresh chain root inside the caller's open batch
// and writes an empty payload into it.
func initChain(store pager.Store, magic string) (*chain, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("shard: chain magic %q must be 8 bytes", magic)
	}
	p, err := store.Allocate()
	if err != nil {
		return nil, err
	}
	c := &chain{store: store, magic: magic, root: p.ID}
	if err := c.write(nil); err != nil {
		return nil, err
	}
	return c, nil
}

// findChainRoot scans the low page ids for a page carrying the magic and
// a valid CRC, returning the attached chain (its overflow list is
// populated by the first read). Stores report unallocated ids with
// ErrPageNotFound; any other read error propagates — a half-broken store
// must not be mistaken for a fresh one.
func findChainRoot(store pager.Store, magic string) (*chain, error) {
	if len(magic) != 8 {
		return nil, fmt.Errorf("shard: chain magic %q must be 8 bytes", magic)
	}
	for id := pager.PageID(1); id <= chainScanLimit; id++ {
		p, err := store.Read(id)
		if err != nil {
			if errors.Is(err, pager.ErrPageNotFound) || errors.Is(err, pager.ErrReservedPage) {
				continue
			}
			return nil, fmt.Errorf("shard: chain scan page %d: %w", id, err)
		}
		if string(p.Data[0:8]) != magic {
			continue
		}
		if !chainPageCRCOK(p.Data) {
			continue
		}
		c := &chain{store: store, magic: magic, root: id}
		if _, err := c.read(); err != nil {
			return nil, fmt.Errorf("shard: chain root %d: %w", id, err)
		}
		return c, nil
	}
	return nil, errChainNotFound
}

func chainPageCRCOK(data []byte) bool {
	n := len(data)
	want := binary.LittleEndian.Uint32(data[n-4:])
	return crc32.Checksum(data[:n-4], castagnoli) == want
}

// decodeChainPage validates one chain page and returns its payload slice
// (aliasing data) and successor.
func (c *chain) decodeChainPage(id pager.PageID, data []byte) (payload []byte, next pager.PageID, err error) {
	if string(data[0:8]) != c.magic {
		return nil, 0, fmt.Errorf("shard: chain page %d: bad magic: %w", id, pager.ErrPageCorrupt)
	}
	if !chainPageCRCOK(data) {
		return nil, 0, fmt.Errorf("shard: chain page %d: bad checksum: %w", id, pager.ErrPageCorrupt)
	}
	next = pager.PageID(binary.LittleEndian.Uint32(data[8:12]))
	n := int(binary.LittleEndian.Uint32(data[12:16]))
	if n < 0 || n > chainCap(len(data)) {
		return nil, 0, fmt.Errorf("shard: chain page %d: length %d: %w", id, n, pager.ErrPageCorrupt)
	}
	return data[chainHeaderLen : chainHeaderLen+n], next, nil
}

// read returns the chain's full payload and refreshes the overflow list.
func (c *chain) read() ([]byte, error) {
	var payload []byte
	c.overflow = c.overflow[:0]
	id := c.root
	for hops := 0; ; hops++ {
		if hops > chainScanLimit*1024 {
			return nil, fmt.Errorf("shard: chain from %d: cycle: %w", c.root, pager.ErrPageCorrupt)
		}
		p, err := c.store.Read(id)
		if err != nil {
			return nil, err
		}
		part, next, err := c.decodeChainPage(id, p.Data)
		if err != nil {
			return nil, err
		}
		payload = append(payload, part...)
		if next == pager.NilPage {
			return payload, nil
		}
		id = next
		c.overflow = append(c.overflow, id)
	}
}

// write replaces the chain's payload inside the caller's open batch: the
// root page is rewritten in place, overflow pages are reallocated to fit,
// and surplus old overflow pages are freed. Call only with the batch
// open — the chain is the atomic commit record of that batch.
func (c *chain) write(payload []byte) error {
	pageSize := c.store.PageSize()
	cap_ := chainCap(pageSize)
	need := 0
	if len(payload) > cap_ {
		need = (len(payload) - cap_ + cap_ - 1) / cap_
	}
	// Grow or shrink the overflow list to exactly `need` pages.
	for len(c.overflow) < need {
		p, err := c.store.Allocate()
		if err != nil {
			return err
		}
		c.overflow = append(c.overflow, p.ID)
	}
	for len(c.overflow) > need {
		last := c.overflow[len(c.overflow)-1]
		if err := c.store.Free(last); err != nil {
			return err
		}
		c.overflow = c.overflow[:len(c.overflow)-1]
	}
	ids := append([]pager.PageID{c.root}, c.overflow...)
	off := 0
	for i, id := range ids {
		n := len(payload) - off
		if n > cap_ {
			n = cap_
		}
		data := make([]byte, pageSize)
		copy(data[0:8], c.magic)
		next := pager.NilPage
		if i+1 < len(ids) {
			next = ids[i+1]
		}
		binary.LittleEndian.PutUint32(data[8:12], uint32(next))
		binary.LittleEndian.PutUint32(data[12:16], uint32(n))
		copy(data[chainHeaderLen:], payload[off:off+n])
		binary.LittleEndian.PutUint32(data[pageSize-4:],
			crc32.Checksum(data[:pageSize-4], castagnoli))
		if err := c.store.Write(&pager.Page{ID: id, Data: data}); err != nil {
			return err
		}
		off += n
	}
	return nil
}
