package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

// TestPartialErrorUnwrap pins the error-tree semantics callers rely on:
// a *PartialError exposes every per-shard cause through Unwrap() []error,
// so errors.Is and errors.As reach them — directly, through fmt.Errorf
// wrapping, and through errors.Join with unrelated errors.
func TestPartialErrorUnwrap(t *testing.T) {
	inj := &pager.InjectedError{Op: "read", Page: 7, N: 1, Transient: true}
	pe := &PartialError{
		Missing: []int{1, 3},
		Causes: []error{
			fmt.Errorf("shard 1: retry budget exhausted: %w", inj),
			fmt.Errorf("shard 3 unhealthy: %w", ErrShardDown),
		},
	}
	if !errors.Is(pe, ErrShardDown) {
		t.Error("errors.Is(pe, ErrShardDown) = false, want true via Causes")
	}
	if !errors.Is(pe, pager.ErrTransient) || !errors.Is(pe, pager.ErrInjected) {
		t.Error("transient injected cause not reachable through Unwrap")
	}
	var gotInj *pager.InjectedError
	if !errors.As(pe, &gotInj) || gotInj.Page != 7 {
		t.Errorf("errors.As did not recover the injected cause: %+v", gotInj)
	}

	// Wrapped once more (the way callers annotate failures).
	wrapped := fmt.Errorf("serving tick 12: %w", pe)
	var gotPE *PartialError
	if !errors.As(wrapped, &gotPE) || len(gotPE.Missing) != 2 {
		t.Fatalf("errors.As through fmt wrapping failed: %v", wrapped)
	}
	if !errors.Is(wrapped, ErrShardDown) {
		t.Error("cause lost through fmt wrapping")
	}

	// Joined with an unrelated error (multi-operation aggregation).
	joined := errors.Join(context.DeadlineExceeded, wrapped)
	gotPE = nil
	if !errors.As(joined, &gotPE) || gotPE != pe {
		t.Fatal("errors.As through errors.Join did not find the PartialError")
	}
	if !errors.Is(joined, pager.ErrTransient) {
		t.Error("shard cause lost through errors.Join")
	}
}

// TestPartialErrorMissingDeterministic kills two shards of four and
// queries repeatedly: Missing must list the dead bands ascending with
// Causes parallel, identically on every call, regardless of the order the
// concurrent per-shard tasks happened to finish in.
func TestPartialErrorMissingDeterministic(t *testing.T) {
	leakcheck.Check(t)
	pol := Policy{
		AllowPartial: true,
		BreakAfter:   1 << 30, // keep the breaker out of it: every call really fails
	}
	r, faults := cluster(t, 4, 4, pol)
	ms := motions1D(192)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 2} {
		faults[id].SetConfig(pager.FaultConfig{
			Seed: int64(100 + id),
			Read: pager.OpFaults{FailEvery: 1},
		})
	}
	q := queries1D[1] // full-terrain sweep: targets every band
	var first *PartialError
	for round := 0; round < 8; round++ {
		_, err := r.Query(context.Background(), q)
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: err = %v, want PartialError", round, err)
		}
		if len(pe.Causes) != len(pe.Missing) {
			t.Fatalf("round %d: %d causes for %d missing", round, len(pe.Causes), len(pe.Missing))
		}
		for i := 1; i < len(pe.Missing); i++ {
			if pe.Missing[i] <= pe.Missing[i-1] {
				t.Fatalf("round %d: Missing not ascending: %v", round, pe.Missing)
			}
		}
		if len(pe.Missing) != 2 || pe.Missing[0] != 0 || pe.Missing[1] != 2 {
			t.Fatalf("round %d: Missing = %v, want [0 2]", round, pe.Missing)
		}
		if first == nil {
			first = pe
			continue
		}
		for i := range first.Missing {
			if pe.Missing[i] != first.Missing[i] {
				t.Fatalf("round %d: Missing %v differs from first round %v", round, pe.Missing, first.Missing)
			}
		}
	}
}

// TestPartialErrorThroughRetryAndHedge drives one shard through the full
// failure policy — stalled reads, per-attempt deadlines, a hedge racing
// the primary, a retry after both time out — and requires the root cause
// to survive every layer of wrapping into the PartialError: the attempt
// deadline (context.DeadlineExceeded) must be reachable with errors.Is
// even though the caller's own context never expired.
func TestPartialErrorThroughRetryAndHedge(t *testing.T) {
	leakcheck.Check(t)
	pol := Policy{
		ShardTimeout: 3 * time.Millisecond,
		HedgeAfter:   200 * time.Microsecond,
		MaxAttempts:  2,
		AllowPartial: true,
		BreakAfter:   1 << 30,
	}
	r, faults := cluster(t, 2, 2, pol)
	ms := motions1D(128)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	// Shard 0 stalls every read far past the attempt deadline: the primary
	// times out, the hedge launches and times out too, the retry repeats
	// the dance, and the query degrades around the straggler.
	faults[0].SetConfig(pager.FaultConfig{
		Seed:  100,
		Read:  pager.OpFaults{FailEvery: 1},
		Stall: 50 * time.Millisecond,
	})
	_, err := r.Query(context.Background(), queries1D[1])
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PartialError", err)
	}
	if len(pe.Missing) != 1 || pe.Missing[0] != 0 {
		t.Fatalf("Missing = %v, want [0]", pe.Missing)
	}
	if !errors.Is(pe, context.DeadlineExceeded) {
		t.Errorf("attempt deadline not reachable through PartialError: %v", pe)
	}
	st := r.Stats()
	if st.Hedges == 0 {
		t.Errorf("hedge never launched: %+v", st)
	}
	if st.Retries == 0 {
		t.Errorf("retry never attempted: %+v", st)
	}
	if st.Partial == 0 {
		t.Errorf("degraded answer not counted: %+v", st)
	}
}
