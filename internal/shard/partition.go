// Package shard is the fault-isolated sharded serving layer: the object
// space is partitioned into contiguous spatial bands, each band owned by a
// Shard wrapping its own write-ahead-logged store and Dual-B+ index, and a
// Router fans MOR queries to the shards whose bands overlap the query,
// merging with the same sort+dedup contract core.Executor guarantees — a
// no-fault routed query is byte-identical to the same query against a
// single unsharded index.
//
// The layer's reason to exist is what happens when a shard is NOT fine.
// The router wraps every shard interaction in a failure policy: per-shard
// deadlines (context cancellation), bounded retry with exponential backoff
// and seeded jitter (the RetryStore discipline lifted from page operations
// to shard subqueries), optional hedged reads against stragglers, and a
// per-shard circuit breaker fed by Health() and error outcomes. When a
// shard exhausts its retry budget the query degrades instead of dying: the
// router returns the merged results of the healthy shards together with a
// typed *PartialError naming the missing partitions.
package shard

import (
	"fmt"

	"mobidx/internal/dual"
)

// assignSlack widens band boundaries when routing motions and queries.
// Matches() admits candidates within geom.Eps of the query edges, so a
// motion sitting exactly on a band boundary could have its epsilon-wide
// witness fall one band below its assignment; a slack much larger than
// the predicate tolerance (and much smaller than any band) makes the
// boundary case route to both sides. Over-inclusion is free — shard
// answers are exact and the merge deduplicates — while under-inclusion
// would drop an object from the answer.
const assignSlack = 1e-6

// Partitioner deterministically splits the terrain [0, YMax] into n
// contiguous bands of equal height. Band i owns [i·H, (i+1)·H), H =
// YMax/n; the top band also owns y = YMax. It is pure arithmetic — every
// router replica computes the same assignment, which is what makes the
// sharding contract testable against a single-index oracle.
type Partitioner struct {
	yMax float64
	n    int
	h    float64
}

// NewPartitioner builds a partitioner over [0, yMax] with n bands.
func NewPartitioner(yMax float64, n int) (*Partitioner, error) {
	if yMax <= 0 {
		return nil, fmt.Errorf("shard: partitioner needs yMax > 0, got %v", yMax)
	}
	if n < 1 {
		return nil, fmt.Errorf("shard: partitioner needs >= 1 band, got %d", n)
	}
	return &Partitioner{yMax: yMax, n: n, h: yMax / float64(n)}, nil
}

// N returns the number of bands.
func (p *Partitioner) N() int { return p.n }

// BandHeight returns H = YMax/n.
func (p *Partitioner) BandHeight() float64 { return p.h }

// band returns the band owning position y, clamped into [0, n).
func (p *Partitioner) band(y float64) int {
	i := int(y / p.h)
	if i < 0 {
		return 0
	}
	if i >= p.n {
		return p.n - 1
	}
	return i
}

// Overlapping returns the bands a query must be fanned to: every band
// intersecting [Y1, Y2], widened by the routing slack. The slice is
// ascending and non-empty for any well-formed query.
func (p *Partitioner) Overlapping(q dual.MORQuery) []int {
	lo := p.band(q.Y1 - assignSlack)
	hi := p.band(q.Y2 + assignSlack)
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// Assign returns the bands that must hold motion m: every band its
// trajectory touches from its update position until it reaches a terrain
// border, where the model forces a fresh update (§2). A MOR query's
// matching witness extrapolates the current motion linearly, so any
// position the object can be queried at lies between Y0 and the border it
// is heading for — replicating the motion across exactly those bands is
// what makes the union of per-shard answers equal the unsharded answer.
// The slice is ascending; replication averages (n+1)/2 bands, the honest
// price of trajectories that run border-to-border.
func (p *Partitioner) Assign(m dual.Motion) []int {
	var lo, hi int
	if m.V >= 0 {
		lo, hi = p.band(m.Y0-assignSlack), p.n-1
	} else {
		lo, hi = 0, p.band(m.Y0+assignSlack)
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
