// Package shard is the fault-isolated sharded serving layer: the object
// space is partitioned into contiguous spatial bands, each band owned by a
// Shard wrapping its own write-ahead-logged store and Dual-B+ index, and a
// Router fans MOR queries to the shards whose bands overlap the query,
// merging with the same sort+dedup contract core.Executor guarantees — a
// no-fault routed query is byte-identical to the same query against a
// single unsharded index.
//
// The layer's reason to exist is what happens when a shard is NOT fine.
// The router wraps every shard interaction in a failure policy: per-shard
// deadlines (context cancellation), bounded retry with exponential backoff
// and seeded jitter (the RetryStore discipline lifted from page operations
// to shard subqueries), optional hedged reads against stragglers, and a
// per-shard circuit breaker fed by Health() and error outcomes. When a
// shard exhausts its retry budget the query degrades instead of dying: the
// router returns the merged results of the healthy shards together with a
// typed *PartialError naming the missing partitions.
package shard

import (
	"fmt"
	"sort"

	"mobidx/internal/dual"
)

// assignSlack widens band boundaries when routing motions and queries.
// Matches() admits candidates within geom.Eps of the query edges, so a
// motion sitting exactly on a band boundary could have its epsilon-wide
// witness fall one band below its assignment; a slack much larger than
// the predicate tolerance (and much smaller than any band) makes the
// boundary case route to both sides. Over-inclusion is free — shard
// answers are exact and the merge deduplicates — while under-inclusion
// would drop an object from the answer.
const assignSlack = 1e-6

// Partitioner deterministically splits the terrain [0, YMax] into
// contiguous bands at interior cut positions: with cuts c1 < … < c_{n-1},
// band 0 owns [0, c1), band i owns [c_i, c_{i+1}), and the top band also
// owns y = YMax. It is pure arithmetic over an immutable cut list — every
// router replica computes the same assignment, which is what makes the
// sharding contract testable against a single-index oracle, and a
// rebalance is a new Partitioner with one more cut, never a mutation
// (see SplitBand).
type Partitioner struct {
	yMax float64
	cuts []float64 // interior cuts, strictly ascending, within (0, yMax)
}

// NewPartitioner builds a partitioner over [0, yMax] with n equal bands.
func NewPartitioner(yMax float64, n int) (*Partitioner, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: partitioner needs >= 1 band, got %d", n)
	}
	cuts := make([]float64, 0, n-1)
	for i := 1; i < n; i++ {
		cuts = append(cuts, yMax*float64(i)/float64(n))
	}
	return NewPartitionerCuts(yMax, cuts)
}

// NewPartitionerCuts builds a partitioner over [0, yMax] with the given
// interior cuts (strictly ascending, strictly inside (0, yMax)); len(cuts)
// + 1 bands result. An empty cut list is the single-band partitioner.
func NewPartitionerCuts(yMax float64, cuts []float64) (*Partitioner, error) {
	if yMax <= 0 {
		return nil, fmt.Errorf("shard: partitioner needs yMax > 0, got %v", yMax)
	}
	own := make([]float64, len(cuts))
	copy(own, cuts)
	prev := 0.0
	for i, c := range own {
		if c <= prev || c >= yMax {
			return nil, fmt.Errorf("shard: cut %d = %v out of order in (0, %v)", i, c, yMax)
		}
		prev = c
	}
	return &Partitioner{yMax: yMax, cuts: own}, nil
}

// N returns the number of bands.
func (p *Partitioner) N() int { return len(p.cuts) + 1 }

// Cuts returns a copy of the interior cut positions (ascending).
func (p *Partitioner) Cuts() []float64 {
	out := make([]float64, len(p.cuts))
	copy(out, p.cuts)
	return out
}

// Bounds returns band i's extent [lo, hi) (the top band also owns hi).
func (p *Partitioner) Bounds(i int) (lo, hi float64) {
	lo, hi = 0, p.yMax
	if i > 0 {
		lo = p.cuts[i-1]
	}
	if i < len(p.cuts) {
		hi = p.cuts[i]
	}
	return lo, hi
}

// SplitBand returns a new partitioner with band i split at cut, which
// must fall strictly inside the band. Band i becomes [lo, cut) and a new
// band i+1 becomes [cut, hi); every band above shifts up by one. The
// receiver is untouched — topology swaps install the new value atomically.
func (p *Partitioner) SplitBand(i int, cut float64) (*Partitioner, error) {
	if i < 0 || i >= p.N() {
		return nil, fmt.Errorf("shard: split band %d of %d", i, p.N())
	}
	lo, hi := p.Bounds(i)
	if cut <= lo || cut >= hi {
		return nil, fmt.Errorf("shard: split cut %v outside band %d = [%v, %v)", cut, i, lo, hi)
	}
	cuts := make([]float64, 0, len(p.cuts)+1)
	cuts = append(cuts, p.cuts[:i]...)
	cuts = append(cuts, cut)
	cuts = append(cuts, p.cuts[i:]...)
	return NewPartitionerCuts(p.yMax, cuts)
}

// band returns the band owning position y: the number of interior cuts at
// or below y, so a position exactly on a cut belongs to the band above it
// (out-of-terrain positions clamp to the border bands).
func (p *Partitioner) band(y float64) int {
	return sort.Search(len(p.cuts), func(i int) bool { return p.cuts[i] > y })
}

// Overlapping returns the bands a query must be fanned to: every band
// intersecting [Y1, Y2], widened by the routing slack. The slice is
// ascending and non-empty for any well-formed query.
func (p *Partitioner) Overlapping(q dual.MORQuery) []int {
	lo := p.band(q.Y1 - assignSlack)
	hi := p.band(q.Y2 + assignSlack)
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}

// Assign returns the bands that must hold motion m: every band its
// trajectory touches from its update position until it reaches a terrain
// border, where the model forces a fresh update (§2). A MOR query's
// matching witness extrapolates the current motion linearly, so any
// position the object can be queried at lies between Y0 and the border it
// is heading for — replicating the motion across exactly those bands is
// what makes the union of per-shard answers equal the unsharded answer.
// The slice is ascending; replication averages (n+1)/2 bands, the honest
// price of trajectories that run border-to-border.
func (p *Partitioner) Assign(m dual.Motion) []int {
	var lo, hi int
	if m.V >= 0 {
		lo, hi = p.band(m.Y0-assignSlack), p.N()-1
	} else {
		lo, hi = 0, p.band(m.Y0+assignSlack)
	}
	out := make([]int, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		out = append(out, i)
	}
	return out
}
