package shard

import (
	"testing"

	"mobidx/internal/dual"
)

func TestPartitionerValidation(t *testing.T) {
	if _, err := NewPartitioner(0, 4); err == nil {
		t.Fatal("yMax=0 accepted")
	}
	if _, err := NewPartitioner(1000, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	p, err := NewPartitioner(1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 {
		t.Fatalf("N=%d, want 4", p.N())
	}
	if lo, hi := p.Bounds(1); lo != 250 || hi != 500 {
		t.Fatalf("Bounds(1) = [%v, %v), want [250, 500)", lo, hi)
	}
	// Cut validation: out of order and out of range both rejected.
	if _, err := NewPartitionerCuts(1000, []float64{500, 250}); err == nil {
		t.Fatal("descending cuts accepted")
	}
	if _, err := NewPartitionerCuts(1000, []float64{0}); err == nil {
		t.Fatal("cut at 0 accepted")
	}
	if _, err := NewPartitionerCuts(1000, []float64{1000}); err == nil {
		t.Fatal("cut at yMax accepted")
	}
}

func TestPartitionerSplitBand(t *testing.T) {
	p, _ := NewPartitioner(1000, 4)
	q, err := p.SplitBand(1, 300) // [250,500) -> [250,300) + [300,500)
	if err != nil {
		t.Fatal(err)
	}
	if q.N() != 5 {
		t.Fatalf("N after split = %d, want 5", q.N())
	}
	wantCuts := []float64{250, 300, 500, 750}
	for i, c := range q.Cuts() {
		if c != wantCuts[i] {
			t.Fatalf("cuts after split = %v, want %v", q.Cuts(), wantCuts)
		}
	}
	// The receiver is untouched.
	if p.N() != 4 {
		t.Fatalf("original mutated: N=%d", p.N())
	}
	// Equal-band routing semantics survive the equivalent cuts form: the
	// split partitioner agrees with a fresh cuts construction.
	if lo, hi := q.Bounds(2); lo != 300 || hi != 500 {
		t.Fatalf("Bounds(2) = [%v, %v), want [300, 500)", lo, hi)
	}
	if _, err := p.SplitBand(1, 250); err == nil {
		t.Fatal("cut on band floor accepted")
	}
	if _, err := p.SplitBand(9, 300); err == nil {
		t.Fatal("out-of-range band accepted")
	}
}

func TestPartitionerOverlapping(t *testing.T) {
	p, _ := NewPartitioner(1000, 4) // bands [0,250) [250,500) [500,750) [750,1000]
	cases := []struct {
		q    dual.MORQuery
		want []int
	}{
		{dual.MORQuery{Y1: 10, Y2: 20}, []int{0}},
		{dual.MORQuery{Y1: 10, Y2: 260}, []int{0, 1}},
		{dual.MORQuery{Y1: 0, Y2: 1000}, []int{0, 1, 2, 3}},
		// Edges sitting exactly on a boundary must route to both sides:
		// a witness within geom.Eps of the edge may live in either band.
		{dual.MORQuery{Y1: 250, Y2: 250}, []int{0, 1}},
		{dual.MORQuery{Y1: 999, Y2: 1000}, []int{3}},
		// Out-of-terrain edges clamp rather than panic.
		{dual.MORQuery{Y1: -5, Y2: 1500}, []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		got := p.Overlapping(c.q)
		if !equalInts(got, c.want) {
			t.Errorf("Overlapping(%+v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPartitionerAssign(t *testing.T) {
	p, _ := NewPartitioner(1000, 4)
	cases := []struct {
		m    dual.Motion
		want []int
	}{
		// Moving up from band 1: touches bands 1..3 before the top border
		// forces an update.
		{dual.Motion{Y0: 300, V: 1}, []int{1, 2, 3}},
		// Moving down from band 2: touches 0..2.
		{dual.Motion{Y0: 600, V: -1}, []int{0, 1, 2}},
		// Stationary: only its own band upward (over-inclusion is free).
		{dual.Motion{Y0: 10, V: 0}, []int{0, 1, 2, 3}},
		// Exactly on a boundary, moving up: the epsilon-wide witness may
		// fall just below, so the band underneath is included too.
		{dual.Motion{Y0: 500, V: 0.5}, []int{1, 2, 3}},
		// Exactly on a boundary, moving down: band above included.
		{dual.Motion{Y0: 500, V: -0.5}, []int{0, 1, 2}},
	}
	for _, c := range cases {
		got := p.Assign(c.m)
		if !equalInts(got, c.want) {
			t.Errorf("Assign(%+v) = %v, want %v", c.m, got, c.want)
		}
	}
}

// TestPartitionerCoversEveryWitness is the routing soundness property the
// sharding contract rests on: for any motion and any future query the
// motion matches, at least one band holding the motion overlaps the
// query. A violation would silently drop an object from a routed answer.
func TestPartitionerCoversEveryWitness(t *testing.T) {
	p, _ := NewPartitioner(1000, 8)
	ms := make([]dual.Motion, 0, 512)
	for i := 0; i < 256; i++ {
		v := 0.16 + 0.19*float64(i%8)
		if i%2 == 1 {
			v = -v
		}
		ms = append(ms,
			dual.Motion{OID: dual.OID(i), Y0: float64((i * 137) % 1000), T0: 0, V: v},
			// Boundary-sitting motions: the adversarial placement.
			dual.Motion{OID: dual.OID(256 + i), Y0: float64((i % 9) * 125), T0: 0, V: v},
		)
	}
	var qs []dual.MORQuery
	for i := 0; i < 200; i++ {
		y1 := float64((i * 61) % 950)
		w := float64(1 + (i*17)%150)
		if y1+w > 1000 {
			w = 1000 - y1
		}
		t1 := float64(i % 50)
		qs = append(qs, dual.MORQuery{Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + float64(i%60)})
	}
	for _, m := range ms {
		bands := p.Assign(m)
		inBand := make(map[int]bool, len(bands))
		for _, b := range bands {
			inBand[b] = true
		}
		for _, q := range qs {
			if !m.Matches(q) {
				continue
			}
			covered := false
			for _, b := range p.Overlapping(q) {
				if inBand[b] {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("motion %+v matches %+v but no assigned band %v overlaps %v",
					m, q, bands, p.Overlapping(q))
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
