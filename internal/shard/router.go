package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// Policy is the router's per-shard failure policy. The zero value fans
// out with no deadline, no retry, no hedging, and an effectively disabled
// breaker, and fails the whole query on any shard error — the strictest
// reading. Serving configurations opt into each mechanism explicitly.
type Policy struct {
	// ShardTimeout bounds each attempt against one shard; it becomes a
	// context deadline, so the shard stops its in-flight pieces (see
	// core.Executor.RunCtx). Zero means no per-attempt deadline — the
	// caller's own context still applies.
	ShardTimeout time.Duration
	// MaxAttempts is the total tries per shard per query, first try
	// included (0 selects 1: no retry). Only transient faults
	// (pager.IsTransient) and attempt timeouts are retried; permanent
	// errors propagate immediately, exactly as RetryStore does for page
	// operations.
	MaxAttempts int
	// Backoff returns the sleep before retry number attempt (1-based);
	// nil retries immediately. pager.ExponentialBackoff fits here.
	Backoff func(attempt int) time.Duration
	// Jitter spreads each backoff uniformly over [d·(1−J), d·(1+J)],
	// clamped to [0, 1], so concurrent queries' retries decorrelate.
	Jitter float64
	// Seed makes the jitter (and hedge decision) sequence deterministic;
	// zero selects a fixed default.
	Seed int64
	// HedgeAfter, when positive, launches a second identical attempt if
	// the first has not returned within this delay, taking whichever
	// finishes first. It cuts straggler latency (a stalled page read
	// blocks one goroutine, not the query) at the cost of duplicate work.
	// Zero disables hedging.
	HedgeAfter time.Duration
	// BreakAfter consecutive shard-level failures open the shard's
	// circuit breaker (0 selects 4). While open, queries skip the shard
	// immediately — no goroutine, no timeout wait — and degrade.
	BreakAfter int
	// OpenFor is how long an opened breaker rejects before letting one
	// probe through (half-open); the probe's outcome closes or re-opens
	// it. Zero selects 500ms.
	OpenFor time.Duration
	// AllowPartial turns graceful degradation on: when a shard is down
	// past its retry budget (or skipped by its breaker), the query
	// returns the merged results of the remaining shards together with a
	// *PartialError naming the missing partitions, instead of failing.
	// Off, any shard failure fails the query.
	AllowPartial bool
}

func (p Policy) maxAttempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) breakAfter() int {
	if p.BreakAfter <= 0 {
		return 4
	}
	return p.BreakAfter
}

func (p Policy) openFor() time.Duration {
	if p.OpenFor <= 0 {
		return 500 * time.Millisecond
	}
	return p.OpenFor
}

// PartialError reports a degraded query: the answer is exact over the
// partitions that served, and these are the ones that did not. It is
// returned alongside the partial results; callers that can live with a
// degraded answer detect it with errors.As, everyone else treats it as
// the failure it also is.
type PartialError struct {
	// Missing lists the shard ids (bands) absent from the answer,
	// ascending.
	Missing []int
	// Causes holds each missing shard's final error, parallel to Missing.
	Causes []error
}

// Error implements error.
func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shard: partial answer, %d partition(s) missing:", len(e.Missing))
	for i, id := range e.Missing {
		fmt.Fprintf(&b, " [%d: %v]", id, e.Causes[i])
	}
	return b.String()
}

// Unwrap exposes the per-shard causes to errors.Is/As chains.
func (e *PartialError) Unwrap() []error { return e.Causes }

// Stats counts the router's failure-policy traffic.
type Stats struct {
	Queries      int64 // Query calls
	ShardCalls   int64 // first attempts against shards
	Retries      int64 // extra attempts after retryable failures
	Hedges       int64 // hedge attempts launched
	HedgeWins    int64 // hedges that beat the primary
	BreakerSkips int64 // shard calls skipped by an open breaker
	BreakerOpens int64 // closed/half-open → open transitions
	Partial      int64 // queries answered degraded
	FailedShards int64 // shard calls that exhausted the retry budget
	Revived      int64 // shards swapped back in by ReplaceShard (recovery)
}

// breaker is one shard's circuit breaker: closed (normal), open
// (rejecting), half-open (one probe in flight).
type breaker struct {
	mu        sync.Mutex
	fails     int
	state     int // 0 closed, 1 open, 2 half-open
	openUntil time.Time
}

const (
	brkClosed = iota
	brkOpen
	brkHalfOpen
)

// allow reports whether a call may proceed, transitioning open→half-open
// when the rejection window has passed (the caller becomes the probe).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case brkClosed:
		return true
	case brkOpen:
		if now.Before(b.openUntil) {
			return false
		}
		b.state = brkHalfOpen
		return true
	default: // half-open: one probe at a time
		return false
	}
}

// success records a served call; any state collapses back to closed.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.state = brkClosed
}

// failure records a failed call; returns true when this transition opened
// the breaker.
func (b *breaker) failure(now time.Time, pol Policy) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == brkHalfOpen || b.fails >= pol.breakAfter() {
		b.state = brkOpen
		b.openUntil = now.Add(pol.openFor())
		return true
	}
	return false
}

// topology is one immutable generation of the router's world: the space
// partitioner plus the shard and breaker owning each band. A rebalance or
// a revive builds a fresh topology value and installs it under the write
// half of topoMu — queries and writes hold the read half for their whole
// call, so every operation sees exactly one generation and a topology
// swap doubles as the migration's quiesce barrier.
type topology struct {
	part   *Partitioner
	shards []*Shard
	brk    []*breaker
}

// Router owns a cluster of shards and serves MOR queries and motion
// batches across them under the failure policy. It is safe for
// concurrent use.
type Router struct {
	topoMu sync.RWMutex
	topo   topology

	exec   *core.Executor
	policy Policy
	now    func() time.Time

	rngMu sync.Mutex
	rng   *rand.Rand

	// Continuous-query state (see subrouter.go), created on first use.
	subOnce  sync.Once
	subState *subState

	stQueries      atomic.Int64
	stShardCalls   atomic.Int64
	stRetries      atomic.Int64
	stHedges       atomic.Int64
	stHedgeWins    atomic.Int64
	stBreakerSkips atomic.Int64
	stBreakerOpens atomic.Int64
	stPartial      atomic.Int64
	stFailedShards atomic.Int64
	stRevived      atomic.Int64
}

// NewRouter assembles a router over the shards; shard i must own band i
// of the partitioner. exec bounds the fan-out concurrency (nil selects a
// GOMAXPROCS-bounded executor).
func NewRouter(shards []*Shard, part *Partitioner, exec *core.Executor, policy Policy) (*Router, error) {
	if part == nil {
		return nil, errors.New("shard: router needs a partitioner")
	}
	if len(shards) != part.N() {
		return nil, fmt.Errorf("shard: %d shards for %d bands", len(shards), part.N())
	}
	if exec == nil {
		exec = core.NewExecutor(0)
	}
	if policy.Jitter < 0 {
		policy.Jitter = 0
	}
	if policy.Jitter > 1 {
		policy.Jitter = 1
	}
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	brk := make([]*breaker, len(shards))
	for i := range brk {
		brk[i] = &breaker{}
	}
	return &Router{
		topo:   topology{part: part, shards: shards, brk: brk},
		exec:   exec,
		policy: policy,
		now:    time.Now,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Partitioner returns the router's current space partitioner.
func (r *Router) Partitioner() *Partitioner {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	return r.topo.part
}

// Shard returns the shard serving band i in the current topology (nil if
// the band does not exist), for health inspection.
func (r *Router) Shard(i int) *Shard {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	if i < 0 || i >= len(r.topo.shards) {
		return nil
	}
	return r.topo.shards[i]
}

// ReplaceShard installs s as the server for band i, resetting the band's
// circuit breaker so the revived shard does not inherit the dead one's
// tripped state, and returns the shard it replaced (the caller owns
// closing it). It waits for in-flight operations against the old topology
// to drain, so no query observes the swap halfway.
func (r *Router) ReplaceShard(i int, s *Shard) (*Shard, error) {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	if i < 0 || i >= len(r.topo.shards) {
		return nil, fmt.Errorf("shard: replace band %d of %d", i, len(r.topo.shards))
	}
	old := r.topo.shards[i]
	shards := append([]*Shard(nil), r.topo.shards...)
	brk := append([]*breaker(nil), r.topo.brk...)
	shards[i] = s
	brk[i] = &breaker{}
	r.topo = topology{part: r.topo.part, shards: shards, brk: brk}
	r.stRevived.Add(1)
	return old, nil
}

// swapTopology runs fn with the current topology under the exclusive
// lock — every in-flight query and write has drained, none can start —
// and installs the returned one. fn returning an error leaves the old
// topology in place. This is the migration flip's quiesce barrier; fn
// must be short (delta catch-up plus manifest flip), as the whole cluster
// blocks while it runs.
func (r *Router) swapTopology(fn func(old topology) (topology, error)) error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	next, err := fn(r.topo)
	if err != nil {
		return err
	}
	if next.part == nil || len(next.shards) != next.part.N() || len(next.brk) != next.part.N() {
		return fmt.Errorf("shard: swap to inconsistent topology (%d shards, %d breakers, %d bands)",
			len(next.shards), len(next.brk), next.part.N())
	}
	r.topo = next
	return nil
}

// Stats returns a snapshot of the failure-policy counters.
func (r *Router) Stats() Stats {
	return Stats{
		Queries:      r.stQueries.Load(),
		ShardCalls:   r.stShardCalls.Load(),
		Retries:      r.stRetries.Load(),
		Hedges:       r.stHedges.Load(),
		HedgeWins:    r.stHedgeWins.Load(),
		BreakerSkips: r.stBreakerSkips.Load(),
		BreakerOpens: r.stBreakerOpens.Load(),
		Partial:      r.stPartial.Load(),
		FailedShards: r.stFailedShards.Load(),
		Revived:      r.stRevived.Load(),
	}
}

// Query fans q to every shard whose band overlaps it, applies the
// failure policy per shard, and merges the per-shard answers into one
// sorted, deduplicated slice — byte-identical to the same query against
// a single unsharded index when every shard serves. With AllowPartial,
// shards down past their retry budget degrade the answer instead of
// failing it: the results cover exactly the healthy partitions and the
// returned error is a *PartialError naming the missing ones.
func (r *Router) Query(ctx context.Context, q dual.MORQuery) ([]dual.OID, error) {
	r.stQueries.Add(1)
	// The read lock pins one topology generation for the whole query: a
	// concurrent migration flip waits for us (and we never see its half).
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	topo := r.topo
	targets := topo.part.Overlapping(q)
	buckets := make([][]dual.OID, len(targets))
	failures := make([]error, len(targets))
	tasks := make([]func() error, len(targets))
	for ti, si := range targets {
		ti, si := ti, si
		tasks[ti] = func() error {
			res, err := r.queryShard(ctx, topo, si, q)
			if err != nil {
				if r.policy.AllowPartial && !isCallerCtxErr(ctx, err) {
					failures[ti] = err
					return nil
				}
				return err
			}
			buckets[ti] = res
			return nil
		}
	}
	if err := r.exec.RunCtx(ctx, tasks); err != nil {
		return nil, err
	}
	merged := core.MergeOIDs(buckets)
	var missing []int
	var causes []error
	for ti, err := range failures {
		if err != nil {
			missing = append(missing, targets[ti])
			causes = append(causes, err)
		}
	}
	if len(missing) > 0 {
		r.stPartial.Add(1)
		return merged, &PartialError{Missing: missing, Causes: causes}
	}
	return merged, nil
}

// isCallerCtxErr reports whether err is the caller's own context giving
// up — that must fail the query, not degrade it (the caller is gone).
func isCallerCtxErr(ctx context.Context, err error) bool {
	return ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// retryable mirrors RetryStore's classification at the shard level:
// transient storage faults and attempt timeouts may heal on retry;
// everything else is permanent and propagates immediately.
func retryable(err error) bool {
	return pager.IsTransient(err) || errors.Is(err, context.DeadlineExceeded)
}

// queryShard runs the full failure policy for one shard: breaker gate,
// health gate, bounded retry with backoff+jitter, hedged attempts.
func (r *Router) queryShard(ctx context.Context, topo topology, si int, q dual.MORQuery) ([]dual.OID, error) {
	b := topo.brk[si]
	if !b.allow(r.now()) {
		r.stBreakerSkips.Add(1)
		return nil, fmt.Errorf("shard %d: breaker open: %w", si, ErrShardDown)
	}
	s := topo.shards[si]
	r.stShardCalls.Add(1)
	if h := s.Health(); !h.Healthy {
		if b.failure(r.now(), r.policy) {
			r.stBreakerOpens.Add(1)
		}
		r.stFailedShards.Add(1)
		err := h.Err
		if err == nil {
			err = ErrShardDown
		}
		return nil, fmt.Errorf("shard %d unhealthy: %w", si, err)
	}
	var lastErr error
	attempts := r.policy.maxAttempts()
	for attempt := 1; attempt <= attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := r.attempt(ctx, s, q)
		if err == nil {
			b.success()
			return res, nil
		}
		if ctx.Err() != nil {
			// The caller's context expired (the attempt error may be the
			// shard echoing it); stop without charging the shard.
			return nil, ctx.Err()
		}
		lastErr = err
		if !retryable(err) || attempt == attempts {
			break
		}
		r.stRetries.Add(1)
		if !r.sleepBackoff(ctx, attempt) {
			return nil, ctx.Err()
		}
	}
	if b.failure(r.now(), r.policy) {
		r.stBreakerOpens.Add(1)
	}
	r.stFailedShards.Add(1)
	return nil, fmt.Errorf("shard %d: retry budget exhausted: %w", si, lastErr)
}

// sleepBackoff sleeps the jittered backoff before the next attempt,
// returning false if the context expired first.
func (r *Router) sleepBackoff(ctx context.Context, attempt int) bool {
	if r.policy.Backoff == nil {
		return ctx.Err() == nil
	}
	d := r.policy.Backoff(attempt)
	if d > 0 && r.policy.Jitter > 0 {
		r.rngMu.Lock()
		u := r.rng.Float64()
		r.rngMu.Unlock()
		d = time.Duration(float64(d) * (1 - r.policy.Jitter + 2*r.policy.Jitter*u))
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attempt is one try against one shard, under the per-attempt deadline
// and (when configured) a hedge: if the primary has not answered within
// HedgeAfter, an identical second call races it and the first outcome
// wins. The loser finishes on its own (its results are discarded through
// a buffered channel) — with a per-operation stall schedule the hedge
// almost never hits the same stalled page read, which is the point.
func (r *Router) attempt(ctx context.Context, s *Shard, q dual.MORQuery) ([]dual.OID, error) {
	actx := ctx
	if r.policy.ShardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.policy.ShardTimeout)
		defer cancel()
	}
	if r.policy.HedgeAfter <= 0 {
		return s.Query(actx, q)
	}
	type outcome struct {
		res    []dual.OID
		err    error
		hedged bool
	}
	ch := make(chan outcome, 2)
	launch := func(hedged bool) {
		//mobidxlint:allow gorolifecycle -- bounded: at most 2 launches send into a cap-2 channel, so the send never blocks, and s.Query is cut off by the actx deadline
		go func() {
			res, err := s.Query(actx, q)
			ch <- outcome{res: res, err: err, hedged: hedged}
		}()
	}
	launch(false)
	timer := time.NewTimer(r.policy.HedgeAfter)
	defer timer.Stop()
	pending := 1
	hedged := false
	var firstErr error
	for pending > 0 {
		var hedgeC <-chan time.Time
		if !hedged {
			hedgeC = timer.C
		}
		select {
		case o := <-ch:
			pending--
			if o.err == nil {
				if o.hedged {
					r.stHedgeWins.Add(1)
				}
				return o.res, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
		case <-hedgeC:
			hedged = true
			r.stHedges.Add(1)
			launch(true)
			pending++
		}
	}
	return nil, firstErr
}

// Apply routes each op to every shard whose bands its motion touches and
// applies the per-shard batches concurrently, each as one atomic WAL
// batch. Writes do not degrade: a failed shard batch quarantines that
// shard (see Shard.Apply) and Apply reports it in a *PartialError — the
// surviving shards applied their batches, the named partitions did not,
// and reads will degrade around them from now on.
func (r *Router) Apply(ctx context.Context, ops []Op) error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	topo := r.topo
	perShard := make([][]Op, len(topo.shards))
	for _, op := range ops {
		for _, si := range topo.part.Assign(op.M) {
			perShard[si] = append(perShard[si], op)
		}
	}
	failures := make([]error, len(topo.shards))
	var tasks []func() error
	for si, batch := range perShard {
		if len(batch) == 0 {
			continue
		}
		si, batch := si, batch
		tasks = append(tasks, func() error {
			if err := topo.shards[si].Apply(ctx, batch); err != nil {
				if isCallerCtxErr(ctx, err) {
					return err
				}
				failures[si] = err
			}
			return nil
		})
	}
	if err := r.exec.RunCtx(ctx, tasks); err != nil {
		return err
	}
	var missing []int
	var causes []error
	for si, err := range failures {
		if err != nil {
			missing = append(missing, si)
			causes = append(causes, err)
		}
	}
	if len(missing) > 0 {
		return &PartialError{Missing: missing, Causes: causes}
	}
	return nil
}

// BulkLoad splits ms by band assignment and bulk-loads every shard
// concurrently, each as one atomic batch. Any failure is returned as a
// *PartialError (failed shards are quarantined).
func (r *Router) BulkLoad(ctx context.Context, ms []dual.Motion) error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	topo := r.topo
	perShard := make([][]dual.Motion, len(topo.shards))
	for _, m := range ms {
		for _, si := range topo.part.Assign(m) {
			perShard[si] = append(perShard[si], m)
		}
	}
	failures := make([]error, len(topo.shards))
	tasks := make([]func() error, len(topo.shards))
	for si := range topo.shards {
		si := si
		tasks[si] = func() error {
			if err := topo.shards[si].BulkLoad(ctx, perShard[si]); err != nil {
				if isCallerCtxErr(ctx, err) {
					return err
				}
				failures[si] = err
			}
			return nil
		}
	}
	if err := r.exec.RunCtx(ctx, tasks); err != nil {
		return err
	}
	var missing []int
	var causes []error
	for si, err := range failures {
		if err != nil {
			missing = append(missing, si)
			causes = append(causes, err)
		}
	}
	if len(missing) > 0 {
		return &PartialError{Missing: missing, Causes: causes}
	}
	return nil
}

// Degraded reports which shards are currently not serving (unhealthy or
// breaker-open), for operational visibility.
func (r *Router) Degraded() []int {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	now := r.now()
	var out []int
	for i, s := range r.topo.shards {
		b := r.topo.brk[i]
		b.mu.Lock()
		open := b.state == brkOpen && now.Before(b.openUntil)
		b.mu.Unlock()
		if open || !s.Health().Healthy {
			out = append(out, i)
		}
	}
	return out
}

// Close shuts every shard down.
func (r *Router) Close() error {
	r.topoMu.Lock()
	defer r.topoMu.Unlock()
	var errs []error
	for _, s := range r.topo.shards {
		if err := s.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// NewCluster builds n shards from the config template (tmpl.ID and
// tmpl.WrapStore are overwritten per shard) plus the matching partitioner
// and router — the one-call constructor serving code and tests use. wrap,
// when non-nil, is called with each shard's id to produce that shard's
// store wrapper (return nil to leave a shard unwrapped), which is how the
// chaos harness gets a fault injector under exactly the shards it wants
// to hurt.
func NewCluster(tmpl Config, n int, exec *core.Executor, policy Policy, wrap func(id int) func(pager.Store) pager.Store) (*Router, error) {
	part, err := NewPartitioner(tmpl.Terrain.YMax, n)
	if err != nil {
		return nil, err
	}
	shards := make([]*Shard, n)
	for i := 0; i < n; i++ {
		cfg := tmpl
		cfg.ID = i
		cfg.WrapStore = nil
		if wrap != nil {
			cfg.WrapStore = wrap(i)
		}
		s, err := New(cfg)
		if err != nil {
			for _, prev := range shards[:i] {
				err = errors.Join(err, prev.Close())
			}
			return nil, err
		}
		shards[i] = s
	}
	r, err := NewRouter(shards, part, exec, policy)
	if err != nil {
		for _, s := range shards {
			err = errors.Join(err, s.Close())
		}
		return nil, err
	}
	return r, nil
}
