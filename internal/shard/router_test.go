package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
	"mobidx/internal/workload"
)

// cluster builds an n-shard router with per-shard FaultStores (initially
// clean) so tests can hurt individual shards mid-run.
func cluster(t testing.TB, n int, workers int, pol Policy) (*Router, []*pager.FaultStore) {
	t.Helper()
	faults := make([]*pager.FaultStore, n)
	r, err := NewCluster(Config{Terrain: terrain1D}, n, core.NewExecutor(workers), pol,
		func(id int) func(pager.Store) pager.Store {
			return func(st pager.Store) pager.Store {
				faults[id] = pager.NewFaultStore(st, pager.FaultConfig{Seed: int64(100 + id)})
				return faults[id]
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := r.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return r, faults
}

func TestRouterValidation(t *testing.T) {
	p, _ := NewPartitioner(1000, 2)
	if _, err := NewRouter(nil, nil, nil, Policy{}); err == nil {
		t.Fatal("nil partitioner accepted")
	}
	if _, err := NewRouter(make([]*Shard, 3), p, nil, Policy{}); err == nil {
		t.Fatal("shard/band count mismatch accepted")
	}
}

// TestRouterMatchesUnshardedOracle is the sharding contract: a routed
// query over any topology is byte-identical to the same query against a
// single unsharded index, at any worker count.
func TestRouterMatchesUnshardedOracle(t *testing.T) {
	leakcheck.Check(t)
	ms := motions1D(256)
	oracle := newOracle(t)
	for _, m := range ms {
		if err := oracle.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 2, 8} {
			r, _ := cluster(t, shards, workers, Policy{})
			if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
				t.Fatal(err)
			}
			for _, q := range queries1D {
				want, err := oracle.QueryParallelCtx(context.Background(), core.NewExecutor(1), q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := r.Query(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				if fingerprint(got) != fingerprint(want) {
					t.Fatalf("shards=%d workers=%d query %+v: routed %q, oracle %q",
						shards, workers, q, fingerprint(got), fingerprint(want))
				}
			}
		}
	}
}

// TestRouterDifferentialWorkload runs the §5 simulator against three
// implementations in lockstep — the sequential single index, the parallel
// single index, and routed clusters of 1 and 4 shards — and demands
// byte-identical answers from all of them on both query mixes at worker
// counts 1, 2 and 8. Router(1 shard) ≡ QueryParallel ≡ sequential is the
// degenerate-topology leg of the differential; Router(4) adds real
// partitioning on top.
func TestRouterDifferentialWorkload(t *testing.T) {
	leakcheck.Check(t)
	params := workload.Params{
		N: 300, Seed: 1999, Terrain: terrain1D, UpdatesPerTick: 40, Ticks: 6,
	}
	sim, err := workload.NewSimulator(params)
	if err != nil {
		t.Fatal(err)
	}
	oracle := newOracle(t)
	r1, _ := cluster(t, 1, 2, Policy{})
	r4s := map[int]*Router{}
	for _, w := range []int{1, 2, 8} {
		r4s[w], _ = cluster(t, 4, w, Policy{})
	}
	apply := func(op workload.Op) error {
		var err error
		if op.Insert {
			err = oracle.Insert(op.Motion)
		} else {
			err = oracle.Delete(op.Motion)
		}
		if err != nil {
			return err
		}
		ops := []Op{{Insert: op.Insert, M: op.Motion}}
		if err := r1.Apply(context.Background(), ops); err != nil {
			return err
		}
		for _, r4 := range r4s {
			if err := r4.Apply(context.Background(), ops); err != nil {
				return err
			}
		}
		return nil
	}
	if err := sim.Bootstrap(apply); err != nil {
		t.Fatal(err)
	}
	seqExec := core.NewExecutor(1)
	parExec := core.NewExecutor(8)
	check := func(qs []dual.MORQuery) {
		t.Helper()
		for _, q := range qs {
			seq, err := oracle.QueryParallelCtx(context.Background(), seqExec, q)
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(seq)
			par, err := oracle.QueryParallelCtx(context.Background(), parExec, q)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(par) != want {
				t.Fatalf("parallel oracle diverged on %+v", q)
			}
			got1, err := r1.Query(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(got1) != want {
				t.Fatalf("router(1 shard) diverged on %+v: %q vs %q", q, fingerprint(got1), want)
			}
			for w, r4 := range r4s {
				got4, err := r4.Query(context.Background(), q)
				if err != nil {
					t.Fatal(err)
				}
				if fingerprint(got4) != want {
					t.Fatalf("router(4 shards, %d workers) diverged on %+v: %q vs %q",
						w, q, fingerprint(got4), want)
				}
			}
		}
	}
	for tick := 0; tick < params.Ticks; tick++ {
		if err := sim.Tick(apply); err != nil {
			t.Fatal(err)
		}
		if tick%2 == 1 {
			check(sim.Queries(workload.SmallQueries())[:20])
			check(sim.Queries(workload.LargeQueries())[:20])
		}
	}
}

// TestRouterRetryAbsorbsTransientFaults: a bounded storm of transient
// read faults is absorbed by the retry budget — the same discipline
// RetryStore applies to page operations, lifted to shard subqueries.
func TestRouterRetryAbsorbsTransientFaults(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 4, 4, Policy{
		MaxAttempts: 4,
		Backoff:     func(int) time.Duration { return 100 * time.Microsecond },
		Jitter:      0.5,
		Seed:        42,
	})
	ms := motions1D(256)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	clean := make([]string, len(queries1D))
	for i, q := range queries1D {
		res, err := r.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		clean[i] = fingerprint(res)
	}
	for _, fs := range faults {
		cfg := fs.Config()
		cfg.Read = pager.OpFaults{FailEvery: 5}
		cfg.Transient = true
		cfg.MaxFaults = 3
		fs.SetConfig(cfg)
	}
	for i, q := range queries1D {
		res, err := r.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %d not absorbed: %v", i, err)
		}
		if fingerprint(res) != clean[i] {
			t.Fatalf("query %d diverged under transient storm", i)
		}
	}
	if st := r.Stats(); st.Retries == 0 {
		t.Fatalf("storm absorbed without retries: %+v", st)
	}
}

// TestRouterDegradesAroundDeadShard: a permanently failing shard is
// retried, then broken, then skipped — every answer along the way is the
// exact union of the healthy partitions, flagged with a *PartialError
// naming the dead one.
func TestRouterDegradesAroundDeadShard(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 4, 4, Policy{
		MaxAttempts:  2,
		BreakAfter:   2,
		OpenFor:      time.Hour, // stays open for the whole test
		AllowPartial: true,
	})
	ms := motions1D(256)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	// Shard 0's storage dies permanently (non-transient: retries cannot
	// help, and must not be spent — permanent errors propagate at once).
	faults[0].SetConfig(pager.FaultConfig{Seed: 100, Read: pager.OpFaults{FailEvery: 1}})
	q := dual.MORQuery{Y1: 0, Y2: 1000, T1: 0, T2: 5} // spans every band
	down := map[int]bool{0: true}
	for i := 0; i < 5; i++ {
		got, err := r.Query(context.Background(), q)
		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("round %d: err = %v, want *PartialError", i, err)
		}
		if len(pe.Missing) != 1 || pe.Missing[0] != 0 {
			t.Fatalf("round %d: Missing = %v, want [0]", i, pe.Missing)
		}
		if !errors.Is(pe, pager.ErrInjected) && !errors.Is(pe, ErrShardDown) {
			t.Fatalf("round %d: cause %v carries neither the injected fault nor ErrShardDown", i, pe)
		}
		want := healthyUnion(r.Partitioner(), ms, q, down)
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("round %d: degraded answer %q, want healthy union %q",
				i, fingerprint(got), fingerprint(want))
		}
	}
	st := r.Stats()
	if st.BreakerOpens == 0 || st.BreakerSkips == 0 {
		t.Fatalf("breaker never engaged: %+v", st)
	}
	if st.Partial != 5 {
		t.Fatalf("Partial = %d, want 5", st.Partial)
	}
	if got := r.Degraded(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Degraded() = %v, want [0]", got)
	}
	// A query that never touches band 0 is not degraded at all.
	narrow := dual.MORQuery{Y1: 900, Y2: 950, T1: 0, T2: 1}
	got, err := r.Query(context.Background(), narrow)
	if err != nil {
		t.Fatalf("band-3-only query degraded: %v", err)
	}
	if fingerprint(got) != fingerprint(bruteForce(r.Partitioner(), ms, narrow, nil)) {
		t.Fatal("band-3-only query wrong")
	}
}

// TestRouterStrictModeFailsWhole: without AllowPartial a dead shard fails
// the query outright — no silent partial answers.
func TestRouterStrictModeFailsWhole(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 2, 2, Policy{})
	if err := r.Apply(context.Background(), opsFor(motions1D(64))); err != nil {
		t.Fatal(err)
	}
	faults[1].SetConfig(pager.FaultConfig{Seed: 101, Read: pager.OpFaults{FailEvery: 1}})
	_, err := r.Query(context.Background(), dual.MORQuery{Y1: 0, Y2: 1000, T1: 0, T2: 5})
	if err == nil {
		t.Fatal("strict-mode query over dead shard succeeded")
	}
	var pe *PartialError
	if errors.As(err, &pe) {
		t.Fatalf("strict mode returned a PartialError: %v", err)
	}
}

// TestRouterHedgeBeatsStall: with a one-shot 150ms stall in shard 0's
// read path, the hedged second attempt (launched after 2ms, running
// against a now-clean fault budget) answers long before the stalled
// primary would have.
func TestRouterHedgeBeatsStall(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 2, 2, Policy{HedgeAfter: 2 * time.Millisecond})
	ms := motions1D(128)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	q := dual.MORQuery{Y1: 0, Y2: 1000, T1: 0, T2: 5}
	want, err := r.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	faults[0].SetConfig(pager.FaultConfig{
		Seed: 100, Read: pager.OpFaults{FailEvery: 1},
		Stall: 150 * time.Millisecond, MaxFaults: 1,
	})
	start := time.Now()
	got, err := r.Query(context.Background(), q)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Fatal("hedged answer diverged")
	}
	if elapsed >= 150*time.Millisecond {
		t.Fatalf("hedge did not cut the stall: %v", elapsed)
	}
	st := r.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge not recorded: %+v", st)
	}
}

// TestRouterDeadlineConvertsStallToDegradation: per-shard deadlines turn
// an unbounded stall into a bounded, typed partial answer.
func TestRouterDeadlineConvertsStallToDegradation(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 2, 2, Policy{
		ShardTimeout: 10 * time.Millisecond,
		AllowPartial: true,
	})
	ms := motions1D(128)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	faults[0].SetConfig(pager.FaultConfig{
		Seed: 100, Read: pager.OpFaults{FailEvery: 1}, Stall: 40 * time.Millisecond,
	})
	q := dual.MORQuery{Y1: 0, Y2: 1000, T1: 0, T2: 5}
	got, err := r.Query(context.Background(), q)
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Missing) != 1 || pe.Missing[0] != 0 {
		t.Fatalf("Missing = %v, want [0]", pe.Missing)
	}
	if !errors.Is(pe, context.DeadlineExceeded) {
		t.Fatalf("cause %v does not carry DeadlineExceeded", pe)
	}
	want := healthyUnion(r.Partitioner(), ms, q, map[int]bool{0: true})
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("degraded answer %q, want %q", fingerprint(got), fingerprint(want))
	}
	// The caller's own cancellation is never converted to a partial.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled query returned %v", err)
	}
}

// TestRouterApplyDegradation: a failed shard batch quarantines that shard
// and surfaces as a typed PartialError; the surviving shards applied
// theirs, and reads degrade around the quarantined one from then on.
func TestRouterApplyDegradation(t *testing.T) {
	leakcheck.Check(t)
	r, faults := cluster(t, 4, 4, Policy{AllowPartial: true, OpenFor: time.Hour})
	ms := motions1D(256)
	if err := r.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	faults[2].SetConfig(pager.FaultConfig{Seed: 102, Write: pager.OpFaults{FailEvery: 1}})
	extra := []dual.Motion{
		{OID: 9001, Y0: 10, T0: 1, V: 0.5},   // bands 0..3: hits the dead shard
		{OID: 9002, Y0: 990, T0: 1, V: -0.5}, // bands 0..3: hits the dead shard
	}
	err := r.Apply(context.Background(), opsFor(extra))
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("apply err = %v, want *PartialError", err)
	}
	if len(pe.Missing) != 1 || pe.Missing[0] != 2 {
		t.Fatalf("Missing = %v, want [2]", pe.Missing)
	}
	if h := r.Shard(2).Health(); !h.Quarantined {
		t.Fatalf("failed shard not quarantined: %+v", h)
	}
	// Reads now degrade around shard 2; the healthy shards hold both the
	// original population and the extra motions.
	q := dual.MORQuery{Y1: 0, Y2: 1000, T1: 1, T2: 5}
	got, err := r.Query(context.Background(), q)
	if !errors.As(err, &pe) || len(pe.Missing) != 1 || pe.Missing[0] != 2 {
		t.Fatalf("query err = %v, want partial missing [2]", err)
	}
	all := append(append([]dual.Motion{}, ms...), extra...)
	want := healthyUnion(r.Partitioner(), all, q, map[int]bool{2: true})
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("degraded answer %q, want %q", fingerprint(got), fingerprint(want))
	}
}

// TestRouterBulkLoad: the bulk path routes the same replicas the
// incremental path does.
func TestRouterBulkLoad(t *testing.T) {
	leakcheck.Check(t)
	ms := motions1D(256)
	inc, _ := cluster(t, 4, 2, Policy{})
	if err := inc.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	bulk, _ := cluster(t, 4, 2, Policy{})
	if err := bulk.BulkLoad(context.Background(), ms); err != nil {
		t.Fatal(err)
	}
	for _, q := range queries1D {
		a, err := inc.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bulk.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(a) != fingerprint(b) {
			t.Fatalf("bulk vs incremental diverged on %+v", q)
		}
	}
}
