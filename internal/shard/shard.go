package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/ingest"
	"mobidx/internal/pager"
	"mobidx/internal/subscribe"
)

// Op is one motion mutation: an insert of a new motion or a delete of a
// previously inserted one (an object's update is a delete+insert pair, as
// everywhere else in this repository).
type Op struct {
	Insert bool
	M      dual.Motion
}

// Config configures one shard.
type Config struct {
	// ID is the shard's index in its cluster (its band number).
	ID int
	// Terrain is the full terrain — every shard indexes the same dual
	// space; the partitioner decides which motions it holds.
	Terrain dual.Terrain
	// C is the Dual-B+ observation-index count (0 selects 4).
	C int
	// Codec selects the on-page record precision (zero value = Wide).
	Codec bptree.Codec
	// PageSize is the shard's page size (0 selects pager.DefaultPageSize).
	// Chaos tests run small pages so tiny populations still span deep
	// trees with real splits.
	PageSize int
	// WrapStore, when non-nil, wraps the shard's WAL-backed store before
	// the index is built on top — the serving-path position, where the
	// WAL stages writes and serves reads from its page table, so a
	// wrapper below it would never see query traffic. It is the
	// fault-isolation test hook: the chaos harness injects a FaultStore
	// here, so one shard can fail, stall, or corrupt without the others
	// noticing. Wrappers should forward Batcher (FaultStore does) so the
	// shard's atomic write batches keep their semantics.
	WrapStore func(pager.Store) pager.Store
	// AutoCheckpointBytes bounds the shard's WAL (0 disables).
	AutoCheckpointBytes int64
	// GroupCommit enables WAL group commit (pager.WALConfig.GroupCommit):
	// concurrent commits against this shard's store coalesce onto shared
	// log syncs. The shard's own Apply path is serialized under its write
	// latch, so this matters when other committers — explicit pager.Txn
	// writers such as per-writer ingest journals — share the store.
	GroupCommit bool
	// Ingest, when non-nil, puts a log-structured write tier in front of
	// the shard's index: Apply lands ops in the tier's memtable instead of
	// the B+-trees, and the trees are rebuilt by one atomic bulk reindex
	// when enough frozen runs accumulate. The catalog then carries the
	// tier's delta (superblock flushed watermark), so crash recovery stays
	// exact: reattach the base, replay the suffix. An ingest shard requires
	// unique live OIDs (the tier upserts per object); opening durable media
	// that holds same-OID replicas with Ingest set fails.
	Ingest *IngestConfig
}

// IngestConfig tunes the shard's optional write tier; zero values select
// the ingest package defaults.
type IngestConfig struct {
	// MemtableFlush freezes the memtable into an immutable run at this
	// many distinct OIDs (0 selects 2048).
	MemtableFlush int
	// MaxRuns triggers the fold into the base index (0 selects 4).
	MaxRuns int
	// BloomBitsPerKey sizes each run's bloom filter (0 selects 10).
	BloomBitsPerKey int
}

func (ic *IngestConfig) tierConfig(tr dual.Terrain) ingest.Config {
	return ingest.Config{
		Terrain:         tr,
		MemtableFlush:   ic.MemtableFlush,
		MaxRuns:         ic.MaxRuns,
		BloomBitsPerKey: ic.BloomBitsPerKey,
	}
}

// Health is a shard's self-reported serving state.
type Health struct {
	// Healthy reports whether the shard accepts work. A shard turns
	// unhealthy when closed or quarantined after a failed write batch.
	Healthy bool
	// Quarantined reports a failed Apply/BulkLoad: the WAL rolled the
	// batch back so the durable state is the pre-batch image, but the
	// in-memory index may have diverged from it, so the shard refuses
	// further work until rebuilt.
	Quarantined bool
	// Failures counts consecutive failed operations (any kind); it resets
	// on success. Context cancellations are the caller's doing and are
	// not counted.
	Failures int
	// Err is the last failure observed (nil when none).
	Err error
}

// ErrShardDown marks a shard that is not serving: closed, quarantined, or
// skipped by an open circuit breaker. Typed so callers (and tests) can
// tell "this partition was unavailable" from a query that failed.
var ErrShardDown = errors.New("shard: shard down")

// Shard is one partition's server: a Dual-B+ index over a write-ahead-
// logged private store, behind a context-aware interface. Queries share a
// read latch; Apply/BulkLoad take the write latch and run as one atomic
// WAL batch — a failed batch leaves no durable trace and quarantines the
// shard (see Health). Every batch also rewrites the shard's superblock
// and appends to its motion catalog (see durable.go), so Open can recover
// the shard from its surviving base store and log alone.
type Shard struct {
	id    int
	wal   *pager.WALStore
	store pager.Store // the index's store: the WAL, possibly wrapped (Config.WrapStore)
	ix    *core.DualBPlus
	exec  *core.Executor // single worker: sequential pieces, ctx-checked between them
	sb    *chain         // superblock page chain
	cat   *catalog       // durable motion log

	// tier is the optional write tier (Config.Ingest); when non-nil the
	// write path stages into it and queries go through it. flushed mirrors
	// the superblock watermark: the base index covers exactly the first
	// flushed catalog records. Tierless shards keep flushed = cat.records.
	tier    *ingest.Tier
	flushed int

	// subs is the shard's continuous-query matcher: standing queries over
	// exactly the motions this shard holds (replicas included — the router
	// deduplicates). It is serving state, not durable state: Open re-seeds
	// it from the catalog, BulkLoad resets it, and a failed feed only
	// disables the subscription path (subErr), never the index.
	subs *subscribe.Engine

	mu sync.RWMutex // serving latch: Query RLock, Apply/BulkLoad Lock

	stateMu     sync.Mutex
	consecFails int
	lastErr     error
	quarantined bool
	closed      bool
	subErr      error // first subscription-feed failure; sticky
}

// New builds a shard with a fresh in-memory store and WAL.
func New(cfg Config) (*Shard, error) {
	pageSize := cfg.PageSize
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	return Open(cfg, pager.NewMemStore(pageSize), pager.NewMemLog())
}

// Open builds a shard over its durable media: a base page store and its
// write-ahead log. The WAL is replayed first (pager.OpenWALStore), then
// the shard's superblock is located; when present the index is reattached
// from it (core.AttachDualBPlus) and the motion catalog rewound — the
// crash-recovery path — and when absent the media is fresh and the shard
// initializes itself with one atomic batch. Either way the shard serves
// exactly the last committed batch's state.
func Open(cfg Config, base pager.Store, log pager.LogFile) (*Shard, error) {
	wal, err := pager.OpenWALStore(base, log,
		pager.WALConfig{AutoCheckpointBytes: cfg.AutoCheckpointBytes, GroupCommit: cfg.GroupCommit})
	if err != nil {
		return nil, fmt.Errorf("shard %d: open wal: %w", cfg.ID, err)
	}
	var store pager.Store = wal
	if cfg.WrapStore != nil {
		store = cfg.WrapStore(store)
	}
	s, err := openOn(cfg, wal, store)
	if err != nil {
		return nil, errors.Join(err, wal.Close())
	}
	return s, nil
}

func openOn(cfg Config, wal *pager.WALStore, store pager.Store) (*Shard, error) {
	dcfg := core.DualBPlusConfig{Terrain: cfg.Terrain, C: cfg.C, Codec: cfg.Codec}
	sb, err := findChainRoot(store, sbMagic)
	switch {
	case err == nil:
		// Recovery: reattach the index and catalog from the superblock.
		payload, err := sb.read()
		if err != nil {
			return nil, fmt.Errorf("shard %d: read superblock: %w", cfg.ID, err)
		}
		rec, err := decodeSuperblock(payload)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", cfg.ID, err)
		}
		ix, err := core.AttachDualBPlus(store, dcfg, rec.meta)
		if err != nil {
			return nil, fmt.Errorf("shard %d: attach index: %w", cfg.ID, err)
		}
		cat, err := attachCatalog(store, rec.catHead)
		if err != nil {
			return nil, fmt.Errorf("shard %d: attach catalog: %w", cfg.ID, err)
		}
		flushed := rec.flushed
		if flushed == sbFlushedAll {
			flushed = cat.records // v1 superblock: no tier, base covers all
		}
		if flushed > cat.records {
			return nil, fmt.Errorf("shard %d: flushed watermark %d past %d catalog records: %w",
				cfg.ID, flushed, cat.records, pager.ErrPageCorrupt)
		}
		s := &Shard{id: cfg.ID, wal: wal, store: store, ix: ix,
			exec: core.NewExecutor(1), sb: sb, cat: cat, flushed: flushed}
		if cfg.Ingest != nil {
			// Reattach the write tier: the base index covers the catalog's
			// flushed prefix; the suffix is the delta, replayed into the
			// memtable (never merged — recovery must not write pages).
			allOps, err := cat.ops()
			if err != nil {
				return nil, fmt.Errorf("shard %d: read catalog: %w", cfg.ID, err)
			}
			baseMs, err := motionsOfOps(allOps[:flushed])
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", cfg.ID, err)
			}
			tier, err := ingest.Attach(ix, baseMs, cfg.Ingest.tierConfig(cfg.Terrain))
			if err != nil {
				return nil, fmt.Errorf("shard %d: attach ingest tier: %w", cfg.ID, err)
			}
			if err := tier.Replay(toIngestOps(allOps[flushed:])); err != nil {
				return nil, fmt.Errorf("shard %d: replay ingest delta: %w", cfg.ID, err)
			}
			if tier.Len() != cat.live {
				return nil, fmt.Errorf("shard %d: ingest tier holds %d live motions, catalog %d: %w",
					cfg.ID, tier.Len(), cat.live, pager.ErrPageCorrupt)
			}
			s.tier = tier
		} else {
			if flushed != cat.records {
				return nil, fmt.Errorf("shard %d: durable state carries an ingest delta (%d of %d records flushed); open with Config.Ingest set",
					cfg.ID, flushed, cat.records)
			}
			if cat.live != ix.Len() {
				return nil, fmt.Errorf("shard %d: catalog holds %d live motions, index %d: %w",
					cfg.ID, cat.live, ix.Len(), pager.ErrPageCorrupt)
			}
		}
		eng, err := subscribe.New(subscribe.Config{})
		if err != nil {
			return nil, fmt.Errorf("shard %d: subscription engine: %w", cfg.ID, err)
		}
		// Re-seed the matcher from the durable catalog: the recovered shard
		// answers new subscriptions over exactly the motions it serves.
		ms, err := cat.motions()
		if err != nil {
			return nil, fmt.Errorf("shard %d: read catalog: %w", cfg.ID, err)
		}
		if err := eng.Reset(ms); err != nil {
			return nil, fmt.Errorf("shard %d: seed subscriptions: %w", cfg.ID, err)
		}
		s.subs = eng
		return s, nil

	case errors.Is(err, errChainNotFound):
		// Fresh media: initialize superblock and catalog in one batch.
		ix, err := core.NewDualBPlus(store, dcfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: create index: %w", cfg.ID, err)
		}
		eng, err := subscribe.New(subscribe.Config{})
		if err != nil {
			return nil, fmt.Errorf("shard %d: subscription engine: %w", cfg.ID, err)
		}
		s := &Shard{id: cfg.ID, wal: wal, store: store, ix: ix,
			exec: core.NewExecutor(1), subs: eng}
		if cfg.Ingest != nil {
			tier, terr := ingest.New(ix, cfg.Ingest.tierConfig(cfg.Terrain))
			if terr != nil {
				return nil, fmt.Errorf("shard %d: create ingest tier: %w", cfg.ID, terr)
			}
			s.tier = tier
		}
		err = pager.RunBatch(store, func() error {
			sbc, cerr := initChain(store, sbMagic)
			if cerr != nil {
				return cerr
			}
			s.sb = sbc
			cat, cerr := initCatalog(store)
			if cerr != nil {
				return cerr
			}
			s.cat = cat
			return s.saveMeta()
		})
		if err != nil {
			return nil, fmt.Errorf("shard %d: initialize: %w", cfg.ID, err)
		}
		return s, nil

	default:
		return nil, fmt.Errorf("shard %d: locate superblock: %w", cfg.ID, err)
	}
}

// saveMeta rewrites the superblock from the current index metadata. Must
// run inside the shard's open batch, after every index mutation of that
// batch.
func (s *Shard) saveMeta() error {
	if s.tier == nil {
		s.flushed = s.cat.records // no tier: the base always covers the log
	}
	return s.sb.write(encodeSuperblock(superblock{
		catHead: s.cat.head, flushed: s.flushed, meta: s.ix.Meta()}))
}

// toIngestOps converts catalog/shard ops to tier ops (identical shape).
func toIngestOps(ops []Op) []ingest.Op {
	out := make([]ingest.Op, len(ops))
	for i, op := range ops {
		out[i] = ingest.Op{Insert: op.Insert, M: op.M}
	}
	return out
}

// ID returns the shard's cluster index.
func (s *Shard) ID() int { return s.id }

// Len returns the number of motions the shard holds (replicas included).
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tier != nil {
		return s.tier.Len()
	}
	return s.ix.Len()
}

// Health reports the shard's serving state.
func (s *Shard) Health() Health {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return Health{
		Healthy:     !s.closed && !s.quarantined,
		Quarantined: s.quarantined,
		Failures:    s.consecFails,
		Err:         s.lastErr,
	}
}

// observe feeds an operation outcome into the health state. Context
// cancellations are the caller's deadline, not shard sickness, and do not
// count as failures.
func (s *Shard) observe(err error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	switch {
	case err == nil:
		s.consecFails = 0
		s.lastErr = nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// leave the streak as it was
	default:
		s.consecFails++
		s.lastErr = err
	}
}

// down returns the typed unavailability error when the shard refuses work.
func (s *Shard) down() error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	switch {
	case s.closed:
		return fmt.Errorf("shard %d closed: %w", s.id, ErrShardDown)
	case s.quarantined:
		return fmt.Errorf("shard %d quarantined after failed batch: %w", s.id, ErrShardDown)
	}
	return nil
}

// Query answers the MOR query from the shard's partition: sorted
// ascending, deduplicated — the core.MergeOIDs contract, so per-shard
// answers merge deterministically. The context is honored between query
// pieces (see core.Executor.RunCtx): a router deadline stops the query at
// piece granularity.
func (s *Shard) Query(ctx context.Context, q dual.MORQuery) ([]dual.OID, error) {
	if err := s.down(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	var res []dual.OID
	var err error
	if s.tier != nil {
		// Through the write tier: base subqueries plus the delta overlay,
		// byte-identical to a flat index over the same motions.
		res, err = s.tier.QueryParallelCtx(ctx, s.exec, q)
	} else {
		res, err = s.ix.QueryParallelCtx(ctx, s.exec, q)
	}
	s.mu.RUnlock()
	s.observe(err)
	return res, err
}

// Apply applies the ops as one atomic WAL batch under the write latch.
// On error the batch is rolled back — the durable state is untouched —
// and the shard quarantines itself: the in-memory index may have applied
// a prefix, so it can no longer be trusted to mirror the store. The
// router's circuit breaker and Health checks route around it from then
// on. The context is checked between ops; a cancellation that arrives
// before the first op rolls back cleanly without quarantining, one that
// arrives mid-batch quarantines like any other failure (the in-memory
// index already diverged from the rolled-back pages).
func (s *Shard) Apply(ctx context.Context, ops []Op) error {
	if err := s.down(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := 0
	err := pager.RunBatch(s.store, func() error {
		if s.tier != nil {
			return s.applyTier(ctx, ops, &applied)
		}
		for _, op := range ops {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			if op.Insert {
				err = s.ix.Insert(op.M)
			} else {
				err = s.ix.Delete(op.M)
			}
			if err != nil {
				return err
			}
			applied++
		}
		if err := s.cat.append(ops); err != nil {
			return err
		}
		return s.saveMeta()
	})
	// A pre-first-op cancellation left the in-memory index untouched;
	// every other failure (including a first op that died mid-split) may
	// have mutated it, so the shard can no longer be trusted.
	ctxOnly := applied == 0 &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !ctxOnly {
		s.quarantine(err)
	}
	if err == nil {
		// The batch committed; feed the standing-query matcher (still under
		// the write latch, so subscription state tracks the index exactly).
		// A feed failure is a subscription-path failure only: the durable
		// state is fine, so the shard keeps serving queries and writes, and
		// subscription calls report the sticky subErr instead.
		sops := make([]subscribe.Op, len(ops))
		for i, op := range ops {
			sops[i] = subscribe.Op{Insert: op.Insert, M: op.M}
		}
		if ferr := s.subs.Apply(sops); ferr != nil {
			s.failSubs(ferr)
		}
	}
	s.observe(err)
	return err
}

// applyTier is Apply's batch body on the ingest path: ops stage into the
// write tier (validated with the same discipline the flat path's
// Insert/Delete enforce) and the catalog logs the delta without
// compacting, preserving the base-covers-prefix invariant. When the tier
// folds into the base (Add reports merged), the whole catalog is
// rewritten from the tier's base contents inside this same batch and the
// flushed watermark advances to cover it — so a crash at any boundary
// recovers either the pre-batch state or the post-merge state, never a
// torn run. Must run inside the shard's open batch, under the write
// latch.
func (s *Shard) applyTier(ctx context.Context, ops []Op, applied *int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	// The tier stages the whole batch in memory; from here on any failure
	// may have mutated tier state, so the caller's quarantine logic treats
	// the batch as entered.
	*applied = len(ops)
	merged, err := s.tier.Add(toIngestOps(ops))
	if err != nil {
		return err
	}
	if merged {
		if err := s.cat.rewrite(s.tier.BaseMotions()); err != nil {
			return err
		}
		s.flushed = s.cat.records
	} else if err := s.cat.appendRaw(ops); err != nil {
		return err
	}
	return s.saveMeta()
}

// BulkLoad atomically replaces the shard's contents with ms (one WAL
// batch, bottom-up builders — see core.DualBPlus.BulkLoad). Like Apply, a
// failure quarantines the shard.
func (s *Shard) BulkLoad(ctx context.Context, ms []dual.Motion) error {
	if err := s.down(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := pager.RunBatch(s.store, func() error {
		if s.tier != nil {
			// Load through the tier: base replaced, delta cleared, catalog
			// fully covered by the new base.
			if err := s.tier.Load(ms); err != nil {
				return err
			}
		} else if err := s.ix.BulkLoad(ms); err != nil {
			return err
		}
		if err := s.cat.rewrite(ms); err != nil {
			return err
		}
		if s.tier != nil {
			s.flushed = s.cat.records
		}
		return s.saveMeta()
	})
	if err != nil {
		s.quarantine(err)
	}
	if err == nil {
		// Contents replaced atomically; the matcher resets to match,
		// emitting the net membership transitions.
		if ferr := s.subs.Reset(ms); ferr != nil {
			s.failSubs(ferr)
		}
	}
	s.observe(err)
	return err
}

// IngestStats reports the write tier's shape and counters; ok is false
// when the shard runs without a tier (Config.Ingest nil).
func (s *Shard) IngestStats() (ingest.Stats, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tier == nil {
		return ingest.Stats{}, false
	}
	return s.tier.Stats(), true
}

// Motions enumerates the shard's live motions from its durable catalog,
// sorted by (OID, T0, Y0, V). This is the exact record of what the shard
// holds — the dual transform is not invertible in a way that preserves
// residence intervals, so migration and peer rebuild read from here, not
// from the trees.
func (s *Shard) Motions() ([]dual.Motion, error) {
	if err := s.down(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cat.motions()
}

// Checkpoint folds the shard's committed WAL into its base store and
// truncates the log — the idle-time compaction hook; recovery works with
// or without it.
func (s *Shard) Checkpoint() error {
	if err := s.down(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Checkpoint()
}

func (s *Shard) quarantine(cause error) {
	s.stateMu.Lock()
	s.quarantined = true
	s.lastErr = cause
	s.stateMu.Unlock()
}

// failSubs records the first subscription-feed failure; the subscription
// path refuses work from then on (the index path is unaffected).
func (s *Shard) failSubs(cause error) {
	s.stateMu.Lock()
	if s.subErr == nil {
		s.subErr = fmt.Errorf("shard %d: subscription feed: %w", s.id, cause)
	}
	s.stateMu.Unlock()
}

// subsDown gates the subscription path: the shard must be serving and the
// matcher must not have fallen behind the index.
func (s *Shard) subsDown() error {
	if err := s.down(); err != nil {
		return err
	}
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return s.subErr
}

// Subscribe registers a standing query [y1, y2] with the given sliding
// window against this shard's partition; the current per-shard answer set
// arrives as Enter deltas (see subscribe.Engine.Subscribe).
func (s *Shard) Subscribe(y1, y2, window float64) (subscribe.SubID, error) {
	if err := s.subsDown(); err != nil {
		return 0, err
	}
	return s.subs.Subscribe(y1, y2, window)
}

// Unsubscribe tears a shard-level standing query down.
func (s *Shard) Unsubscribe(id subscribe.SubID) error {
	if err := s.subsDown(); err != nil {
		return err
	}
	return s.subs.Unsubscribe(id)
}

// AdvanceSubs moves the shard's subscription clock to now, firing kinetic
// boundary crossings (see subscribe.Engine.Advance).
func (s *Shard) AdvanceSubs(now float64) error {
	if err := s.subsDown(); err != nil {
		return err
	}
	return s.subs.Advance(now)
}

// DrainSubs returns a shard-level subscription's accumulated deltas in
// emission order.
func (s *Shard) DrainSubs(id subscribe.SubID) ([]subscribe.Delta, error) {
	if err := s.subsDown(); err != nil {
		return nil, err
	}
	return s.subs.Drain(id)
}

// SubMembers returns a shard-level subscription's current answer set over
// this shard's partition, sorted.
func (s *Shard) SubMembers(id subscribe.SubID) ([]dual.OID, error) {
	if err := s.subsDown(); err != nil {
		return nil, err
	}
	return s.subs.Members(id)
}

// Close shuts the shard down; further operations fail with ErrShardDown.
func (s *Shard) Close() error {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var terr error
	if s.tier != nil {
		terr = s.tier.Close()
	}
	return errors.Join(terr, s.subs.Close(), s.wal.Close())
}
