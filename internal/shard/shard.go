package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// Op is one motion mutation: an insert of a new motion or a delete of a
// previously inserted one (an object's update is a delete+insert pair, as
// everywhere else in this repository).
type Op struct {
	Insert bool
	M      dual.Motion
}

// Config configures one shard.
type Config struct {
	// ID is the shard's index in its cluster (its band number).
	ID int
	// Terrain is the full terrain — every shard indexes the same dual
	// space; the partitioner decides which motions it holds.
	Terrain dual.Terrain
	// C is the Dual-B+ observation-index count (0 selects 4).
	C int
	// Codec selects the on-page record precision (zero value = Wide).
	Codec bptree.Codec
	// PageSize is the shard's page size (0 selects pager.DefaultPageSize).
	// Chaos tests run small pages so tiny populations still span deep
	// trees with real splits.
	PageSize int
	// WrapStore, when non-nil, wraps the shard's WAL-backed store before
	// the index is built on top — the serving-path position, where the
	// WAL stages writes and serves reads from its page table, so a
	// wrapper below it would never see query traffic. It is the
	// fault-isolation test hook: the chaos harness injects a FaultStore
	// here, so one shard can fail, stall, or corrupt without the others
	// noticing. Wrappers should forward Batcher (FaultStore does) so the
	// shard's atomic write batches keep their semantics.
	WrapStore func(pager.Store) pager.Store
	// AutoCheckpointBytes bounds the shard's WAL (0 disables).
	AutoCheckpointBytes int64
}

// Health is a shard's self-reported serving state.
type Health struct {
	// Healthy reports whether the shard accepts work. A shard turns
	// unhealthy when closed or quarantined after a failed write batch.
	Healthy bool
	// Quarantined reports a failed Apply/BulkLoad: the WAL rolled the
	// batch back so the durable state is the pre-batch image, but the
	// in-memory index may have diverged from it, so the shard refuses
	// further work until rebuilt.
	Quarantined bool
	// Failures counts consecutive failed operations (any kind); it resets
	// on success. Context cancellations are the caller's doing and are
	// not counted.
	Failures int
	// Err is the last failure observed (nil when none).
	Err error
}

// ErrShardDown marks a shard that is not serving: closed, quarantined, or
// skipped by an open circuit breaker. Typed so callers (and tests) can
// tell "this partition was unavailable" from a query that failed.
var ErrShardDown = errors.New("shard: shard down")

// Shard is one partition's server: a Dual-B+ index over a write-ahead-
// logged private store, behind a context-aware interface. Queries share a
// read latch; Apply/BulkLoad take the write latch and run as one atomic
// WAL batch — a failed batch leaves no durable trace and quarantines the
// shard (see Health).
type Shard struct {
	id    int
	wal   *pager.WALStore
	store pager.Store // the index's store: the WAL, possibly wrapped (Config.WrapStore)
	ix    *core.DualBPlus
	exec  *core.Executor // single worker: sequential pieces, ctx-checked between them

	mu sync.RWMutex // serving latch: Query RLock, Apply/BulkLoad Lock

	stateMu     sync.Mutex
	consecFails int
	lastErr     error
	quarantined bool
	closed      bool
}

// New builds a shard with a fresh in-memory store and WAL.
func New(cfg Config) (*Shard, error) {
	pageSize := cfg.PageSize
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	wal, err := pager.OpenWALStore(pager.NewMemStore(pageSize), pager.NewMemLog(),
		pager.WALConfig{AutoCheckpointBytes: cfg.AutoCheckpointBytes})
	if err != nil {
		return nil, fmt.Errorf("shard %d: open wal: %w", cfg.ID, err)
	}
	var store pager.Store = wal
	if cfg.WrapStore != nil {
		store = cfg.WrapStore(store)
	}
	ix, err := core.NewDualBPlus(store, core.DualBPlusConfig{
		Terrain: cfg.Terrain, C: cfg.C, Codec: cfg.Codec,
	})
	if err != nil {
		errs := errors.Join(err, wal.Close())
		return nil, fmt.Errorf("shard %d: create index: %w", cfg.ID, errs)
	}
	return &Shard{id: cfg.ID, wal: wal, store: store, ix: ix, exec: core.NewExecutor(1)}, nil
}

// ID returns the shard's cluster index.
func (s *Shard) ID() int { return s.id }

// Len returns the number of motions the shard holds (replicas included).
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ix.Len()
}

// Health reports the shard's serving state.
func (s *Shard) Health() Health {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	return Health{
		Healthy:     !s.closed && !s.quarantined,
		Quarantined: s.quarantined,
		Failures:    s.consecFails,
		Err:         s.lastErr,
	}
}

// observe feeds an operation outcome into the health state. Context
// cancellations are the caller's deadline, not shard sickness, and do not
// count as failures.
func (s *Shard) observe(err error) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	switch {
	case err == nil:
		s.consecFails = 0
		s.lastErr = nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// leave the streak as it was
	default:
		s.consecFails++
		s.lastErr = err
	}
}

// down returns the typed unavailability error when the shard refuses work.
func (s *Shard) down() error {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	switch {
	case s.closed:
		return fmt.Errorf("shard %d closed: %w", s.id, ErrShardDown)
	case s.quarantined:
		return fmt.Errorf("shard %d quarantined after failed batch: %w", s.id, ErrShardDown)
	}
	return nil
}

// Query answers the MOR query from the shard's partition: sorted
// ascending, deduplicated — the core.MergeOIDs contract, so per-shard
// answers merge deterministically. The context is honored between query
// pieces (see core.Executor.RunCtx): a router deadline stops the query at
// piece granularity.
func (s *Shard) Query(ctx context.Context, q dual.MORQuery) ([]dual.OID, error) {
	if err := s.down(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	res, err := s.ix.QueryParallelCtx(ctx, s.exec, q)
	s.mu.RUnlock()
	s.observe(err)
	return res, err
}

// Apply applies the ops as one atomic WAL batch under the write latch.
// On error the batch is rolled back — the durable state is untouched —
// and the shard quarantines itself: the in-memory index may have applied
// a prefix, so it can no longer be trusted to mirror the store. The
// router's circuit breaker and Health checks route around it from then
// on. The context is checked between ops; a cancellation that arrives
// before the first op rolls back cleanly without quarantining, one that
// arrives mid-batch quarantines like any other failure (the in-memory
// index already diverged from the rolled-back pages).
func (s *Shard) Apply(ctx context.Context, ops []Op) error {
	if err := s.down(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	applied := 0
	err := pager.RunBatch(s.store, func() error {
		for _, op := range ops {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			if op.Insert {
				err = s.ix.Insert(op.M)
			} else {
				err = s.ix.Delete(op.M)
			}
			if err != nil {
				return err
			}
			applied++
		}
		return nil
	})
	// A pre-first-op cancellation left the in-memory index untouched;
	// every other failure (including a first op that died mid-split) may
	// have mutated it, so the shard can no longer be trusted.
	ctxOnly := applied == 0 &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if err != nil && !ctxOnly {
		s.quarantine(err)
	}
	s.observe(err)
	return err
}

// BulkLoad atomically replaces the shard's contents with ms (one WAL
// batch, bottom-up builders — see core.DualBPlus.BulkLoad). Like Apply, a
// failure quarantines the shard.
func (s *Shard) BulkLoad(ctx context.Context, ms []dual.Motion) error {
	if err := s.down(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.ix.BulkLoad(ms)
	if err != nil {
		s.quarantine(err)
	}
	s.observe(err)
	return err
}

func (s *Shard) quarantine(cause error) {
	s.stateMu.Lock()
	s.quarantined = true
	s.lastErr = cause
	s.stateMu.Unlock()
}

// Close shuts the shard down; further operations fail with ErrShardDown.
func (s *Shard) Close() error {
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return nil
	}
	s.closed = true
	s.stateMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wal.Close()
}
