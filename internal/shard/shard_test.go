package shard

import (
	"context"
	"errors"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

func opsFor(ms []dual.Motion) []Op {
	ops := make([]Op, len(ms))
	for i, m := range ms {
		ops[i] = Op{Insert: true, M: m}
	}
	return ops
}

func TestShardApplyQueryRoundtrip(t *testing.T) {
	s, err := New(Config{Terrain: terrain1D})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ms := motions1D(64)
	if err := s.Apply(context.Background(), opsFor(ms)); err != nil {
		t.Fatal(err)
	}
	oracle := newOracle(t)
	for _, m := range ms {
		if err := oracle.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range queries1D {
		got, err := s.Query(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var want []dual.OID
		if err := oracle.Query(q, func(id dual.OID) { want = append(want, id) }); err != nil {
			t.Fatal(err)
		}
		if fingerprint(got) != fingerprint(want) {
			t.Fatalf("query %+v: shard %q, oracle %q", q, fingerprint(got), fingerprint(want))
		}
	}
	// An update is delete+insert; the shard applies both in one batch.
	upd := []Op{{Insert: false, M: ms[3]}, {Insert: true, M: dual.Motion{OID: ms[3].OID, Y0: 5, T0: 50, V: 0.3}}}
	if err := s.Apply(context.Background(), upd); err != nil {
		t.Fatal(err)
	}
	if h := s.Health(); !h.Healthy || h.Failures != 0 {
		t.Fatalf("healthy shard reports %+v", h)
	}
}

func TestShardQuarantineOnFailedBatch(t *testing.T) {
	var fs *pager.FaultStore
	s, err := New(Config{Terrain: terrain1D, WrapStore: func(st pager.Store) pager.Store {
		fs = pager.NewFaultStore(st, pager.FaultConfig{Seed: 5})
		return fs
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply(context.Background(), opsFor(motions1D(32))); err != nil {
		t.Fatal(err)
	}
	// Every write now fails: the next batch dies mid-flight and must
	// quarantine the shard (the WAL rolled the pages back, but the
	// in-memory index may hold a prefix of the batch).
	fs.SetConfig(pager.FaultConfig{Seed: 5, Write: pager.OpFaults{FailEvery: 1}})
	extra := motions1D(64)[32:]
	if err := s.Apply(context.Background(), opsFor(extra)); err == nil {
		t.Fatal("apply over failing writes succeeded")
	}
	h := s.Health()
	if h.Healthy || !h.Quarantined || h.Err == nil {
		t.Fatalf("after failed batch Health = %+v, want quarantined", h)
	}
	if _, err := s.Query(context.Background(), queries1D[0]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("query on quarantined shard returned %v, want ErrShardDown", err)
	}
	if err := s.Apply(context.Background(), opsFor(extra[:1])); !errors.Is(err, ErrShardDown) {
		t.Fatalf("apply on quarantined shard returned %v, want ErrShardDown", err)
	}
}

func TestShardPreCancelDoesNotQuarantine(t *testing.T) {
	s, err := New(Config{Terrain: terrain1D})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Apply(ctx, opsFor(motions1D(8))); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled apply returned %v", err)
	}
	if h := s.Health(); !h.Healthy || h.Failures != 0 {
		t.Fatalf("pre-cancelled apply dirtied health: %+v", h)
	}
	if _, err := s.Query(ctx, queries1D[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query returned %v", err)
	}
	// The shard still serves a live context.
	if err := s.Apply(context.Background(), opsFor(motions1D(8))); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(context.Background(), queries1D[0]); err != nil {
		t.Fatal(err)
	}
}

func TestShardTransientReadFaultSurfacesWithoutQuarantine(t *testing.T) {
	var fs *pager.FaultStore
	s, err := New(Config{Terrain: terrain1D, WrapStore: func(st pager.Store) pager.Store {
		fs = pager.NewFaultStore(st, pager.FaultConfig{Seed: 11})
		return fs
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Apply(context.Background(), opsFor(motions1D(64))); err != nil {
		t.Fatal(err)
	}
	clean, err := s.Query(context.Background(), queries1D[0])
	if err != nil {
		t.Fatal(err)
	}
	fs.SetConfig(pager.FaultConfig{Seed: 11, Read: pager.OpFaults{FailEvery: 1}, Transient: true, MaxFaults: 1})
	_, qerr := s.Query(context.Background(), queries1D[0])
	if qerr == nil || !pager.IsTransient(qerr) {
		t.Fatalf("faulted query returned %v, want transient", qerr)
	}
	h := s.Health()
	if !h.Healthy || h.Quarantined {
		t.Fatalf("read fault quarantined the shard: %+v", h)
	}
	if h.Failures != 1 {
		t.Fatalf("failure streak = %d, want 1", h.Failures)
	}
	// Budget spent: the shard recovers and answers exactly as before.
	got, err := s.Query(context.Background(), queries1D[0])
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(clean) {
		t.Fatalf("post-fault answer diverged: %q vs %q", fingerprint(got), fingerprint(clean))
	}
	if h := s.Health(); h.Failures != 0 {
		t.Fatalf("success did not reset the streak: %+v", h)
	}
}

func TestShardClose(t *testing.T) {
	s, err := New(Config{Terrain: terrain1D})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := s.Query(context.Background(), queries1D[0]); !errors.Is(err, ErrShardDown) {
		t.Fatalf("query after close returned %v", err)
	}
}
