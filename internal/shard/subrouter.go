// Router-level continuous queries: a standing query subscribed through
// the router fans to a per-shard matcher on every band overlapping its
// range, and the per-shard delta streams are merged back into one with a
// membership refcount — exactly the sort+dedup discipline Query uses for
// one-shot answers, lifted to streams. A motion replicated across k
// overlapping bands produces k per-shard Enters; the router emits the
// first (count 0→1) and swallows the rest, and symmetrically emits only
// the Leave that drops the count back to zero. Shards are processed in
// ascending band order and each shard's stream is already in emission
// order, so the merged stream is deterministic.
//
// Subscriptions pin the shards they were created on: a shard revived by
// ReplaceShard or a migration has a fresh matcher that knows nothing of
// older subscriptions, so router subscriptions do not survive topology
// swaps — tear them down first and re-subscribe after, like any other
// serving-side session state.

package shard

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/subscribe"
)

// subLeg is one band's share of a router subscription: the shard it was
// created on (pinned — see the package comment above) and its per-shard
// subscription id there.
type subLeg struct {
	band  int
	shard *Shard
	id    subscribe.SubID
}

// routerSub is the router's bookkeeping for one standing query.
type routerSub struct {
	legs []subLeg         // ascending by band
	ref  map[dual.OID]int // shard-membership count per object
	seq  uint64           // merged-stream emission counter
}

// subState is the router's subscription table, created lazily.
type subState struct {
	mu    sync.Mutex
	next  subscribe.SubID
	table map[subscribe.SubID]*routerSub
}

func (r *Router) subsTable() *subState {
	r.subOnce.Do(func() {
		r.subState = &subState{table: make(map[subscribe.SubID]*routerSub)}
	})
	return r.subState
}

// Subscribe registers the standing query [y1, y2] with the given sliding
// window across the cluster: one per-shard matcher subscription on every
// band overlapping the range. On partial failure the already-created legs
// are torn down and the error returned. The returned id is router-scoped.
func (r *Router) Subscribe(y1, y2, window float64) (subscribe.SubID, error) {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	topo := r.topo
	bands := topo.part.Overlapping(dual.MORQuery{Y1: y1, Y2: y2})
	legs := make([]subLeg, 0, len(bands))
	for _, band := range bands {
		s := topo.shards[band]
		id, err := s.Subscribe(y1, y2, window)
		if err != nil {
			errs := []error{fmt.Errorf("shard: subscribe band %d: %w", band, err)}
			for _, leg := range legs {
				if uerr := leg.shard.Unsubscribe(leg.id); uerr != nil {
					errs = append(errs, uerr)
				}
			}
			return 0, errors.Join(errs...)
		}
		legs = append(legs, subLeg{band: band, shard: s, id: id})
	}
	st := r.subsTable()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.next++
	rid := st.next
	st.table[rid] = &routerSub{legs: legs, ref: make(map[dual.OID]int)}
	return rid, nil
}

// Unsubscribe tears the router subscription down on every leg. Legs that
// fail (a shard down mid-teardown) are reported joined, but the
// subscription is forgotten either way.
func (r *Router) Unsubscribe(id subscribe.SubID) error {
	st := r.subsTable()
	st.mu.Lock()
	rs, ok := st.table[id]
	if ok {
		delete(st.table, id)
	}
	st.mu.Unlock()
	if !ok {
		return fmt.Errorf("shard: router unsubscribe %d: %w", id, subscribe.ErrUnknownSub)
	}
	var errs []error
	for _, leg := range rs.legs {
		if err := leg.shard.Unsubscribe(leg.id); err != nil {
			errs = append(errs, fmt.Errorf("shard: unsubscribe band %d: %w", leg.band, err))
		}
	}
	return errors.Join(errs...)
}

// AdvanceSubs moves every shard's subscription clock to now, firing due
// kinetic boundary crossings cluster-wide.
func (r *Router) AdvanceSubs(now float64) error {
	r.topoMu.RLock()
	defer r.topoMu.RUnlock()
	var errs []error
	for _, s := range r.topo.shards {
		if err := s.AdvanceSubs(now); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// DrainSubs returns the router subscription's merged deltas accumulated
// since the last drain. Per-shard streams are folded through the
// membership refcount in ascending band order: Enter is forwarded only
// when an object becomes visible on its first shard, Leave only when it
// vanishes from its last, so replicas never double-report and the merged
// stream reconstructs exactly the cluster-wide answer set.
func (r *Router) DrainSubs(id subscribe.SubID) ([]subscribe.Delta, error) {
	st := r.subsTable()
	st.mu.Lock()
	defer st.mu.Unlock()
	rs, ok := st.table[id]
	if !ok {
		return nil, fmt.Errorf("shard: router drain %d: %w", id, subscribe.ErrUnknownSub)
	}
	var out []subscribe.Delta
	for _, leg := range rs.legs {
		ds, err := leg.shard.DrainSubs(leg.id)
		if err != nil {
			return nil, fmt.Errorf("shard: drain band %d: %w", leg.band, err)
		}
		for _, d := range ds {
			switch d.Kind {
			case subscribe.Enter:
				rs.ref[d.OID]++
				if rs.ref[d.OID] == 1 {
					rs.seq++
					out = append(out, subscribe.Delta{
						Seq: rs.seq, Time: d.Time, Sub: id, OID: d.OID, Kind: subscribe.Enter})
				}
			case subscribe.Leave:
				rs.ref[d.OID]--
				if rs.ref[d.OID] == 0 {
					delete(rs.ref, d.OID)
					rs.seq++
					out = append(out, subscribe.Delta{
						Seq: rs.seq, Time: d.Time, Sub: id, OID: d.OID, Kind: subscribe.Leave})
				}
			default:
				return nil, fmt.Errorf("shard: drain band %d: bad delta kind %v", leg.band, d.Kind)
			}
		}
	}
	return out, nil
}

// SubMembers returns the router subscription's current cluster-wide
// answer set: the per-shard member sets merged sorted and deduplicated,
// the same contract Query's answers follow.
func (r *Router) SubMembers(id subscribe.SubID) ([]dual.OID, error) {
	st := r.subsTable()
	st.mu.Lock()
	rs, ok := st.table[id]
	st.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("shard: router members %d: %w", id, subscribe.ErrUnknownSub)
	}
	buckets := make([][]dual.OID, 0, len(rs.legs))
	for _, leg := range rs.legs {
		ms, err := leg.shard.SubMembers(leg.id)
		if err != nil {
			return nil, fmt.Errorf("shard: members band %d: %w", leg.band, err)
		}
		buckets = append(buckets, ms)
	}
	return core.MergeOIDs(buckets), nil
}

// Subs returns the number of live router subscriptions, ascending ids
// first for inspection convenience.
func (r *Router) Subs() []subscribe.SubID {
	st := r.subsTable()
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]subscribe.SubID, 0, len(st.table))
	for id := range st.table {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
