package shard

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/subscribe"
	"mobidx/internal/workload"
)

// TestRouterSubscriptionDifferential drives the geofence workload through
// clusters of 1 and 4 shards and asserts, after every tick, that each
// router subscription's drained deltas reconstruct exactly the merged
// member set, which in turn equals brute force over the simulator's
// ground truth — the engine-level differential contract lifted through
// band replication and the refcount merge.
func TestRouterSubscriptionDifferential(t *testing.T) {
	for _, nShards := range []int{1, 4} {
		nShards := nShards
		t.Run(map[int]string{1: "shards=1", 4: "shards=4"}[nShards], func(t *testing.T) {
			const ticks = 40
			p := workload.DefaultGeofenceParams(200, 30)
			sim, err := workload.NewGeofenceSim(p)
			if err != nil {
				t.Fatalf("NewGeofenceSim: %v", err)
			}
			r, err := NewCluster(Config{Terrain: p.Terrain}, nShards, nil, Policy{}, nil)
			if err != nil {
				t.Fatalf("NewCluster: %v", err)
			}
			defer r.Close()
			ctx := context.Background()

			var pend []Op
			feed := func(op workload.Op) error {
				pend = append(pend, Op{Insert: op.Insert, M: op.Motion})
				return nil
			}
			if err := sim.Bootstrap(feed); err != nil {
				t.Fatalf("Bootstrap: %v", err)
			}
			if err := r.Apply(ctx, pend); err != nil {
				t.Fatalf("Apply bootstrap: %v", err)
			}
			pend = pend[:0]

			fences := sim.Fences()
			type standing struct {
				fence workload.Geofence
				recon map[dual.OID]bool
			}
			live := make(map[subscribe.SubID]*standing)
			addSub := func(f workload.Geofence) {
				id, serr := r.Subscribe(f.Y1, f.Y2, f.Window)
				if serr != nil {
					t.Fatalf("Subscribe: %v", serr)
				}
				live[id] = &standing{fence: f, recon: make(map[dual.OID]bool)}
			}
			for _, f := range fences[:20] {
				addSub(f)
			}

			check := func(tick int) {
				ids := make([]subscribe.SubID, 0, len(live))
				for id := range live {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				for _, id := range ids {
					st := live[id]
					ds, derr := r.DrainSubs(id)
					if derr != nil {
						t.Fatalf("tick %d: DrainSubs: %v", tick, derr)
					}
					for _, d := range ds {
						switch d.Kind {
						case subscribe.Enter:
							if st.recon[d.OID] {
								t.Fatalf("tick %d sub %d: duplicate enter for %d", tick, id, d.OID)
							}
							st.recon[d.OID] = true
						case subscribe.Leave:
							if !st.recon[d.OID] {
								t.Fatalf("tick %d sub %d: leave without enter for %d", tick, id, d.OID)
							}
							delete(st.recon, d.OID)
						default:
							t.Fatalf("tick %d sub %d: bad delta kind %v", tick, id, d.Kind)
						}
					}
					recon := make([]dual.OID, 0, len(st.recon))
					for oid := range st.recon {
						recon = append(recon, oid)
					}
					sort.Slice(recon, func(i, j int) bool { return recon[i] < recon[j] })
					mem, merr := r.SubMembers(id)
					if merr != nil {
						t.Fatalf("tick %d: SubMembers: %v", tick, merr)
					}
					if mem == nil {
						mem = []dual.OID{}
					}
					if !reflect.DeepEqual(recon, mem) {
						t.Fatalf("tick %d sub %d: reconstruction %v != merged members %v",
							tick, id, recon, mem)
					}
					truth := sim.BruteForce(st.fence)
					if !reflect.DeepEqual(recon, truth) {
						t.Fatalf("tick %d sub %d %+v: reconstruction %v != ground truth %v",
							tick, id, st.fence, recon, truth)
					}
				}
			}

			check(0)
			for tick := 1; tick <= ticks; tick++ {
				if err := sim.Tick(feed); err != nil {
					t.Fatalf("Tick %d: %v", tick, err)
				}
				if err := r.AdvanceSubs(sim.Now()); err != nil {
					t.Fatalf("AdvanceSubs: %v", err)
				}
				if err := r.Apply(ctx, pend); err != nil {
					t.Fatalf("Apply: %v", err)
				}
				pend = pend[:0]
				if tick == 10 {
					for _, f := range fences[20:] {
						addSub(f)
					}
				}
				if tick == 20 {
					ids := r.Subs()
					for _, id := range ids[:8] {
						if uerr := r.Unsubscribe(id); uerr != nil {
							t.Fatalf("Unsubscribe: %v", uerr)
						}
						delete(live, id)
					}
				}
				check(tick)
			}
			if len(r.Subs()) != len(live) {
				t.Fatalf("router tracks %d subs, test tracks %d", len(r.Subs()), len(live))
			}
		})
	}
}

// TestShardSubscriptionRecovery crashes a shard and reopens it over the
// surviving media: the recovered shard's matcher must be re-seeded from
// the durable catalog, so a fresh subscription sees exactly the motions
// the index serves.
func TestShardSubscriptionRecovery(t *testing.T) {
	cfg := Config{ID: 1, Terrain: testTerrain(), PageSize: 512}
	base := pager.NewMemStore(512)
	log := pager.NewMemLog()
	s, err := Open(cfg, base, log)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var ops []Op
	for i := 0; i < 64; i++ {
		ops = append(ops, Op{Insert: true, M: dual.Motion{
			OID: dual.OID(i), Y0: float64(i * 15), T0: 0, V: 0.2 + float64(i%7)*0.2}})
	}
	if err := s.Apply(ctx, ops); err != nil {
		t.Fatal(err)
	}

	// Crash (no Close); reopen over the surviving media.
	s2, err := Open(cfg, base, pager.NewMemLogFrom(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	id, err := s2.Subscribe(100, 300, 10)
	if err != nil {
		t.Fatalf("Subscribe after recovery: %v", err)
	}
	got, err := s2.SubMembers(id)
	if err != nil {
		t.Fatal(err)
	}
	q := dual.MORQuery{Y1: 100, Y2: 300, T1: 0, T2: 10}
	var want []dual.OID
	for _, op := range ops {
		if op.M.Matches(q) {
			want = append(want, op.M.OID)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered subscription members %v, want %v", got, want)
	}
}

// TestShardBulkLoadResetsSubs checks that an atomic content replacement
// resets the matcher alongside the index: standing queries see the net
// membership transitions and end up exactly on the bulk image.
func TestShardBulkLoadResetsSubs(t *testing.T) {
	s, err := New(Config{ID: 0, Terrain: testTerrain()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	if err := s.Apply(ctx, []Op{
		{Insert: true, M: dual.Motion{OID: 1, Y0: 150, V: 0.5}},
		{Insert: true, M: dual.Motion{OID: 2, Y0: 800, V: -0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	id, err := s.Subscribe(100, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.DrainSubs(id); err != nil {
		t.Fatal(err)
	}

	bulk := []dual.Motion{
		{OID: 3, Y0: 120, V: 0.3},
		{OID: 4, Y0: 500, V: 0.3},
	}
	if err := s.BulkLoad(ctx, bulk); err != nil {
		t.Fatal(err)
	}
	ds, err := s.DrainSubs(id)
	if err != nil {
		t.Fatal(err)
	}
	var enters, leaves []dual.OID
	for _, d := range ds {
		if d.Kind == subscribe.Enter {
			enters = append(enters, d.OID)
		} else {
			leaves = append(leaves, d.OID)
		}
	}
	if !reflect.DeepEqual(leaves, []dual.OID{1}) || !reflect.DeepEqual(enters, []dual.OID{3}) {
		t.Fatalf("bulk reset deltas: leaves %v enters %v, want [1] and [3]", leaves, enters)
	}
	got, err := s.SubMembers(id)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []dual.OID{3}) {
		t.Fatalf("members after bulk = %v, want [3]", got)
	}
}

// TestRouterSubscribeRollback closes one shard and checks that a
// subscription spanning its band fails cleanly: no leg survives on the
// healthy shards and the router table stays empty.
func TestRouterSubscribeRollback(t *testing.T) {
	r, err := NewCluster(Config{Terrain: testTerrain()}, 4, nil, Policy{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Band 3 owns the top quarter; kill it.
	if err := r.Shard(3).Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Subscribe(100, 900, 10); !errors.Is(err, ErrShardDown) {
		t.Fatalf("Subscribe spanning a dead band: %v, want ErrShardDown", err)
	}
	if n := len(r.Subs()); n != 0 {
		t.Fatalf("router tracks %d subs after failed subscribe, want 0", n)
	}
	for i := 0; i < 3; i++ {
		if got := r.Shard(i).subs.Subs(); got != 0 {
			t.Fatalf("shard %d still holds %d matcher subscriptions after rollback", i, got)
		}
	}
	// A query fully inside healthy bands still subscribes fine.
	id, err := r.Subscribe(10, 200, 5)
	if err != nil {
		t.Fatalf("Subscribe on healthy bands: %v", err)
	}
	if _, err := r.SubMembers(id); err != nil {
		t.Fatalf("SubMembers: %v", err)
	}
}
