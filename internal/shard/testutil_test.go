package shard

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

// The deterministic 1-D population and query set every shard test runs —
// the same conventions as the storage-fault sweeps (internal/pager/
// faulttest), so fingerprints are comparable across layers.

var terrain1D = dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

func motions1D(n int) []dual.Motion {
	ms := make([]dual.Motion, n)
	for i := range ms {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		ms[i] = dual.Motion{OID: dual.OID(i + 1), Y0: float64((i * 137) % 1000), T0: 0, V: v}
	}
	return ms
}

var queries1D = []dual.MORQuery{
	{Y1: 100, Y2: 300, T1: 10, T2: 40},
	{Y1: 0, Y2: 1000, T1: 0, T2: 5},
	{Y1: 450, Y2: 480, T1: 100, T2: 150},
	{Y1: 700, Y2: 900, T1: 0, T2: 60},
}

// fingerprint canonicalizes one result set: sorted, deduplicated OIDs.
func fingerprint(ids []dual.OID) string {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	var prev dual.OID
	for i, id := range ids {
		if i > 0 && id == prev {
			continue
		}
		fmt.Fprintf(&sb, "%d,", id)
		prev = id
	}
	return sb.String()
}

// newOracle builds the unsharded reference index on a clean MemStore.
func newOracle(t testing.TB) *core.DualBPlus {
	t.Helper()
	ix, err := core.NewDualBPlus(pager.NewMemStore(pager.DefaultPageSize),
		core.DualBPlusConfig{Terrain: terrain1D})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// bruteForce answers q exactly over ms, restricted to the given bands
// (nil = all): the ground truth for degraded-answer assertions.
func bruteForce(p *Partitioner, ms []dual.Motion, q dual.MORQuery, healthy map[int]bool) []dual.OID {
	var out []dual.OID
	for _, m := range ms {
		if !m.Matches(q) {
			continue
		}
		if healthy != nil {
			held := false
			for _, b := range p.Assign(m) {
				if healthy[b] {
					held = true
					break
				}
			}
			if !held {
				continue
			}
		}
		out = append(out, m.OID)
	}
	return out
}

// healthyUnion is the degraded-answer oracle: the exact union of what the
// healthy shards among the query's targets hold and match.
func healthyUnion(p *Partitioner, ms []dual.Motion, q dual.MORQuery, down map[int]bool) []dual.OID {
	healthy := make(map[int]bool)
	for _, b := range p.Overlapping(q) {
		if !down[b] {
			healthy[b] = true
		}
	}
	return bruteForce(p, ms, q, healthy)
}
