package subscribe_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/subscribe"
	"mobidx/internal/workload"
)

// oracleIndex is a one-shot access method the engine is checked against:
// after every tick, re-running each standing query through it must give
// exactly the set the engine's accumulated deltas reconstruct.
type oracleIndex struct {
	insert func(dual.Motion) error
	remove func(dual.Motion) error
	query  func(dual.MORQuery) ([]dual.OID, error)
}

func newDualBPOracle(t *testing.T, tr dual.Terrain, workers int) oracleIndex {
	t.Helper()
	ix, err := core.NewDualBPlus(pager.NewMemStore(pager.DefaultPageSize),
		core.DualBPlusConfig{Terrain: tr})
	if err != nil {
		t.Fatalf("NewDualBPlus: %v", err)
	}
	exec := core.NewExecutor(workers)
	return oracleIndex{
		insert: ix.Insert,
		remove: ix.Delete,
		query: func(q dual.MORQuery) ([]dual.OID, error) {
			return ix.QueryParallelCtx(context.Background(), exec, q)
		},
	}
}

func newKDOracle(t *testing.T, tr dual.Terrain) oracleIndex {
	t.Helper()
	ix, err := core.NewKDDual(pager.NewMemStore(pager.DefaultPageSize),
		core.KDDualConfig{Terrain: tr})
	if err != nil {
		t.Fatalf("NewKDDual: %v", err)
	}
	return oracleIndex{
		insert: ix.Insert,
		remove: ix.Delete,
		query: func(q dual.MORQuery) ([]dual.OID, error) {
			var got []dual.OID
			if err := ix.Query(q, func(oid dual.OID) { got = append(got, oid) }); err != nil {
				return nil, err
			}
			return core.MergeOIDs([][]dual.OID{got}), nil
		},
	}
}

func sortedSet(set map[dual.OID]bool) []dual.OID {
	out := make([]dual.OID, 0, len(set))
	for oid, in := range set {
		if in {
			out = append(out, oid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// runDifferentialLeg drives one engine over the geofence trace against
// one oracle index, asserting after every tick that, for every live
// standing query, the delta-reconstructed answer is byte-identical to
// (a) the engine's own member set, (b) a one-shot re-run through the
// oracle index, and (c) brute force over the simulator's ground truth.
// It returns the full drained delta stream for cross-leg comparison.
func runDifferentialLeg(t *testing.T, mkOracle func(t *testing.T) oracleIndex) []subscribe.Delta {
	t.Helper()
	const ticks = 60
	p := workload.DefaultGeofenceParams(300, 50)
	sim, err := workload.NewGeofenceSim(p)
	if err != nil {
		t.Fatalf("NewGeofenceSim: %v", err)
	}
	oracle := mkOracle(t)
	eng, err := subscribe.New(subscribe.Config{})
	if err != nil {
		t.Fatalf("subscribe.New: %v", err)
	}
	defer func() {
		if cerr := eng.Close(); cerr != nil {
			t.Fatalf("Close: %v", cerr)
		}
	}()

	var pend []subscribe.Op
	feed := func(op workload.Op) error {
		pend = append(pend, subscribe.Op{Insert: op.Insert, M: op.Motion})
		if op.Insert {
			return oracle.insert(op.Motion)
		}
		return oracle.remove(op.Motion)
	}
	if err := sim.Bootstrap(feed); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if err := eng.Apply(pend); err != nil {
		t.Fatalf("Apply bootstrap: %v", err)
	}
	pend = pend[:0]

	fences := sim.Fences()
	type standing struct {
		id    subscribe.SubID
		fence workload.Geofence
		recon map[dual.OID]bool
	}
	live := make(map[subscribe.SubID]*standing)
	var stream []subscribe.Delta
	addSub := func(f workload.Geofence) {
		id, serr := eng.Subscribe(f.Y1, f.Y2, f.Window)
		if serr != nil {
			t.Fatalf("Subscribe: %v", serr)
		}
		live[id] = &standing{id: id, fence: f, recon: make(map[dual.OID]bool)}
	}
	// 40 fences standing from t=0; 10 subscribed mid-trace (tick 15);
	// 10 of the originals torn down mid-trace (tick 30).
	for _, f := range fences[:40] {
		addSub(f)
	}

	check := func(tick int) {
		ids := make([]subscribe.SubID, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			st := live[id]
			ds, derr := eng.Drain(id)
			if derr != nil {
				t.Fatalf("tick %d: Drain: %v", tick, derr)
			}
			stream = append(stream, ds...)
			for _, d := range ds {
				switch d.Kind {
				case subscribe.Enter:
					if st.recon[d.OID] {
						t.Fatalf("tick %d sub %d: duplicate enter for %d", tick, id, d.OID)
					}
					st.recon[d.OID] = true
				case subscribe.Leave:
					if !st.recon[d.OID] {
						t.Fatalf("tick %d sub %d: leave without enter for %d", tick, id, d.OID)
					}
					delete(st.recon, d.OID)
				default:
					t.Fatalf("tick %d sub %d: bad delta kind %v", tick, id, d.Kind)
				}
			}
			recon := sortedSet(st.recon)
			mem, merr := eng.Members(id)
			if merr != nil {
				t.Fatalf("tick %d: Members: %v", tick, merr)
			}
			if !reflect.DeepEqual(recon, mem) {
				t.Fatalf("tick %d sub %d: reconstruction %v != engine members %v", tick, id, recon, mem)
			}
			truth := sim.BruteForce(st.fence)
			if !reflect.DeepEqual(recon, truth) {
				t.Fatalf("tick %d sub %d %+v: reconstruction %v != ground truth %v",
					tick, id, st.fence, recon, truth)
			}
			q := dual.MORQuery{Y1: st.fence.Y1, Y2: st.fence.Y2,
				T1: sim.Now(), T2: sim.Now() + st.fence.Window}
			oneShot, qerr := oracle.query(q)
			if qerr != nil {
				t.Fatalf("tick %d: oracle query: %v", tick, qerr)
			}
			if !reflect.DeepEqual(recon, oneShot) {
				t.Fatalf("tick %d sub %d %+v: reconstruction %v != one-shot re-run %v",
					tick, id, st.fence, recon, oneShot)
			}
		}
	}

	check(0)
	for tick := 1; tick <= ticks; tick++ {
		if err := sim.Tick(feed); err != nil {
			t.Fatalf("Tick %d: %v", tick, err)
		}
		if err := eng.Advance(sim.Now()); err != nil {
			t.Fatalf("Advance: %v", err)
		}
		if err := eng.Apply(pend); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		pend = pend[:0]
		if tick == 15 {
			for _, f := range fences[40:] {
				addSub(f)
			}
		}
		if tick == 30 {
			ids := make([]subscribe.SubID, 0, len(live))
			for id := range live {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids[:10] {
				if uerr := eng.Unsubscribe(id); uerr != nil {
					t.Fatalf("Unsubscribe: %v", uerr)
				}
				delete(live, id)
			}
		}
		check(tick)
	}
	return stream
}

// TestDifferentialOracle runs the engine-vs-one-shot differential over
// both access-method families and all worker counts, and asserts that
// the engine's delta stream is byte-identical across every leg: the
// incremental answer must not depend on which structure re-runs the
// standing queries, nor on the oracle's parallelism.
func TestDifferentialOracle(t *testing.T) {
	type leg struct {
		name string
		mk   func(t *testing.T) oracleIndex
	}
	var legs []leg
	for _, w := range []int{1, 2, 8} {
		workers := w
		legs = append(legs, leg{
			name: fmt.Sprintf("dualbp/workers=%d", workers),
			mk: func(t *testing.T) oracleIndex {
				return newDualBPOracle(t, workload.DefaultGeofenceParams(1, 1).Terrain, workers)
			},
		})
	}
	legs = append(legs, leg{
		name: "kddual",
		mk:   func(t *testing.T) oracleIndex { return newKDOracle(t, workload.DefaultGeofenceParams(1, 1).Terrain) },
	})

	var ref []subscribe.Delta
	for i, l := range legs {
		l := l
		first := i == 0
		t.Run(l.name, func(t *testing.T) {
			stream := runDifferentialLeg(t, l.mk)
			if len(stream) == 0 {
				t.Fatalf("differential trace emitted no deltas; scenario is inert")
			}
			if first {
				ref = stream
				return
			}
			if !reflect.DeepEqual(stream, ref) {
				t.Fatalf("delta stream differs between legs (%d vs %d deltas)", len(stream), len(ref))
			}
		})
	}
}
