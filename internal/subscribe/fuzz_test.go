package subscribe

import (
	"math"
	"testing"

	"mobidx/internal/dual"
)

// sanitizeCoord folds an arbitrary fuzzed float into a finite coordinate
// of workload-like magnitude, keeping enough range to stress the slack
// arithmetic (positions far outside the terrain, huge windows).
func sanitizeCoord(x, scale float64) (float64, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, false
	}
	return math.Mod(x, scale), true
}

// FuzzMatcher cross-checks the engine's dual-space query↔motion matcher
// against brute-force geometry. The engine's verdict must equal
// dual.Motion.Matches exactly, always — the stab probes are candidate
// filters and any miss is a bug, so no boundary tolerance is allowed
// there. Matches itself is compared against the swept-interval geometry
// away from its ±Eps decision boundary.
func FuzzMatcher(f *testing.F) {
	f.Add(100.0, 10.0, 20.0, 0.0, 0.0, 1.0, 5.0)
	f.Add(100.0, 10.0, 0.0, 105.0, 0.0, 0.0, 0.0)
	f.Add(500.0, 1.0, 60.0, 999.0, -3.0, -1.5, 17.0)
	f.Add(0.0, 1000.0, 1e6, -4000.0, 100.0, 0.05, 2000.0)
	f.Fuzz(func(t *testing.T, y1, width, window, y0, t0, v, dt float64) {
		var ok bool
		if y1, ok = sanitizeCoord(y1, 1e4); !ok {
			return
		}
		if width, ok = sanitizeCoord(width, 1e4); !ok {
			return
		}
		if window, ok = sanitizeCoord(window, 1e7); !ok {
			return
		}
		if y0, ok = sanitizeCoord(y0, 1e5); !ok {
			return
		}
		if t0, ok = sanitizeCoord(t0, 1e4); !ok {
			return
		}
		if v, ok = sanitizeCoord(v, 1e2); !ok {
			return
		}
		if dt, ok = sanitizeCoord(dt, 1e4); !ok {
			return
		}
		y2 := y1 + math.Abs(width)
		window = math.Abs(window)
		now := math.Abs(dt)
		m := dual.Motion{OID: 1, Y0: y0, T0: t0, V: v}
		q := dual.MORQuery{Y1: y1, Y2: y2, T1: now, T2: now + window}

		e, err := New(Config{Start: now})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer func() {
			if cerr := e.Close(); cerr != nil {
				t.Fatalf("Close: %v", cerr)
			}
		}()
		id, err := e.Subscribe(y1, y2, window)
		if err != nil {
			t.Fatalf("Subscribe(%v,%v,%v): %v", y1, y2, window, err)
		}
		if err := e.Apply([]Op{{Insert: true, M: m}}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		members, err := e.Members(id)
		if err != nil {
			t.Fatalf("Members: %v", err)
		}
		verdict := len(members) == 1
		want := m.Matches(q)
		if verdict != want {
			t.Fatalf("matcher verdict %v != Matches %v for motion %+v query %+v",
				verdict, want, m, q)
		}
		// Insert-before-subscribe must agree with subscribe-before-insert.
		e2, err := New(Config{Start: now})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer func() {
			if cerr := e2.Close(); cerr != nil {
				t.Fatalf("Close: %v", cerr)
			}
		}()
		if err := e2.Apply([]Op{{Insert: true, M: m}}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		id2, err := e2.Subscribe(y1, y2, window)
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		members2, err := e2.Members(id2)
		if err != nil {
			t.Fatalf("Members: %v", err)
		}
		if (len(members2) == 1) != want {
			t.Fatalf("subscribe-time matcher %v != Matches %v for motion %+v query %+v",
				len(members2) == 1, want, m, q)
		}

		// Brute-force geometry: the motion is in the answer iff the
		// position interval swept over [T1, T2] intersects [Y1, Y2].
		// Checked only away from the predicate's ±Eps boundary.
		ya := m.At(q.T1)
		yb := m.At(q.T2)
		lo, hi := math.Min(ya, yb), math.Max(ya, yb)
		overlap := math.Min(hi, y2) - math.Max(lo, y1)
		margin := 1e-6 * (1 + math.Abs(lo) + math.Abs(hi) + math.Abs(y1) + math.Abs(y2))
		if math.Abs(overlap) < margin {
			return
		}
		if brute := overlap > 0; brute != want {
			t.Fatalf("brute-force geometry %v != Matches %v for motion %+v query %+v (overlap %v)",
				brute, want, m, q, overlap)
		}
	})
}

// FuzzKineticBoundary drives a motion past a fuzzed fence purely by
// Advance and asserts the engine's membership at a far checkpoint equals
// the one-shot answer: certificates may fire early or spuriously, but a
// boundary crossing must never be missed.
func FuzzKineticBoundary(f *testing.F) {
	f.Add(100.0, 10.0, 20.0, 0.0, 1.0, 50.0)
	f.Add(300.0, 5.0, 0.0, 600.0, -0.5, 400.0)
	f.Fuzz(func(t *testing.T, y1, width, window, y0, v, horizon float64) {
		var ok bool
		if y1, ok = sanitizeCoord(y1, 1e3); !ok {
			return
		}
		if width, ok = sanitizeCoord(width, 1e2); !ok {
			return
		}
		if window, ok = sanitizeCoord(window, 1e2); !ok {
			return
		}
		if y0, ok = sanitizeCoord(y0, 1e3); !ok {
			return
		}
		if v, ok = sanitizeCoord(v, 4); !ok {
			return
		}
		if horizon, ok = sanitizeCoord(horizon, 1e3); !ok {
			return
		}
		y2 := y1 + math.Abs(width)
		window = math.Abs(window)
		m := dual.Motion{OID: 1, Y0: y0, T0: 0, V: v}

		e, err := New(Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer func() {
			if cerr := e.Close(); cerr != nil {
				t.Fatalf("Close: %v", cerr)
			}
		}()
		if err := e.Apply([]Op{{Insert: true, M: m}}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		id, err := e.Subscribe(y1, y2, window)
		if err != nil {
			t.Fatalf("Subscribe: %v", err)
		}
		// Advance in a few uneven hops; at each checkpoint membership
		// must equal the one-shot answer at that time.
		steps := []float64{0.19, 0.41, 0.67, 1}
		for _, frac := range steps {
			now := math.Abs(horizon) * frac
			if err := e.Advance(now); err != nil {
				t.Fatalf("Advance(%v): %v", now, err)
			}
			members, merr := e.Members(id)
			if merr != nil {
				t.Fatalf("Members: %v", merr)
			}
			want := m.Matches(dual.MORQuery{Y1: y1, Y2: y2, T1: now, T2: now + window})
			// The predicate's own ±Eps time slack makes verdicts within
			// Eps of a boundary legitimately ambiguous between the
			// certificate path and the direct call; skip only that band.
			tol := 1e-6 * (1 + math.Abs(now))
			flipA := m.Matches(dual.MORQuery{Y1: y1, Y2: y2, T1: now - tol, T2: now + window - tol})
			flipB := m.Matches(dual.MORQuery{Y1: y1, Y2: y2, T1: now + tol, T2: now + window + tol})
			if flipA != flipB {
				continue
			}
			if got := len(members) == 1; got != want {
				t.Fatalf("kinetic membership %v != one-shot %v at now=%v for motion %+v fence [%v,%v] w=%v",
					got, want, now, m, y1, y2, window)
			}
		}
	})
}
