package subscribe

import (
	"fmt"
	"math"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kinetic"
)

// The query index groups subscriptions by exact window length W (the
// map key is the float's bit pattern, so no float equality is needed):
// every subscription in a class asks its MOR query over the same time
// window [now, now+W], which reduces matching to one-dimensional
// geometry. A motion y(t) = Y0 + V·(t−T0) is inside [Y1, Y2] at some
// instant of [now, now+W] iff the position interval it sweeps over the
// window intersects [Y1, Y2] — so the subscriptions whose answer can
// contain the motion are exactly those whose [Y1, Y2] stabs the swept
// interval. Two B+-trees per class support that stab query and the
// kinetic successor probes: byY1 keyed on each query's lower edge (Aux
// carries Y2) and byY2 keyed on the upper edge (Aux carries Y1).
//
// Tree probes are candidate filters only, padded with conservative
// slack; the exact verdict is always dual.Motion.Matches on the
// original motion, which is what keeps the engine byte-identical to a
// one-shot re-run.
type windowClass struct {
	w          float64
	byY1, byY2 *bptree.Tree
	count      int
	// maxWidth is the running maximum query width ever admitted to the
	// class: a stab over [lo, hi] scans byY1 from lo − maxWidth, which
	// is the furthest a still-overlapping query's lower edge can sit.
	// It never shrinks while the class is populated (a shrink could
	// under-scan), and resets when the class empties.
	maxWidth float64
}

// certEarly schedules certificates slightly before the raw boundary
// time: Matches widens its time range by geom.Eps on both ends, so a
// membership flip can become observable up to Eps early.
const certEarly = 2 * geom.Eps

// minStepRel clamps re-armed certificates strictly past the current
// time, so one Advance pops each live certificate at most once.
const minStepRel = 1e-9

// candPad returns the stab-filter padding for a motion sweeping
// [lo, hi]: a relative term for float rounding of the interval
// endpoints plus the position equivalent of Matches' time slack.
func candPad(v, lo, hi float64) float64 {
	return 1e-6*(1+math.Abs(lo)+math.Abs(hi)) + math.Abs(v)*4*geom.Eps
}

// edgePad returns the successor/predecessor probe padding around a
// boundary edge position: edges within the pad behind the exact edge
// may still flip membership (Matches' time slack), so they must stay
// visible to certificate scheduling until the object clears them.
func edgePad(v, edge float64) float64 {
	return math.Abs(v)*4*geom.Eps + 1e-9*(1+math.Abs(edge))
}

// classFor returns (creating on first use) the class for window w.
func (e *Engine) classFor(w float64) (*windowClass, error) {
	key := math.Float64bits(w)
	if cl, ok := e.classes[key]; ok {
		return cl, nil
	}
	byY1, err := bptree.New(e.store, bptree.Config{})
	if err != nil {
		return nil, fmt.Errorf("subscribe: query index: %w", err)
	}
	byY2, err := bptree.New(e.store, bptree.Config{})
	if err != nil {
		return nil, fmt.Errorf("subscribe: query index: %w", err)
	}
	cl := &windowClass{w: w, byY1: byY1, byY2: byY2}
	e.classes[key] = cl
	return cl, nil
}

// matchSet returns the exact set of subscriptions whose standing query
// the motion currently satisfies, via one stab per window class. The
// returned map is engine-owned scratch, valid until the next matchSet —
// this is the hottest path (every upsert and every certificate fire),
// so the stab runs on the zero-alloc RangeAppend fastpath with reused
// buffers instead of the allocating decode Range.
func (e *Engine) matchSet(m dual.Motion) (map[SubID]struct{}, error) {
	clear(e.hitSet)
	for _, cl := range e.classes {
		if cl.count == 0 {
			continue
		}
		ya := m.At(e.now)
		yb := m.At(e.now + cl.w)
		lo, hi := math.Min(ya, yb), math.Max(ya, yb)
		pad := candPad(m.V, lo, hi)
		q := dual.MORQuery{T1: e.now, T2: e.now + cl.w}
		ents, err := cl.byY1.RangeAppend(e.scanBuf[:0], lo-cl.maxWidth-pad, hi+pad)
		e.scanBuf = ents
		if err != nil {
			return nil, fmt.Errorf("subscribe: stab: %w", err)
		}
		e.stats.Candidates += uint64(len(ents))
		for _, en := range ents {
			if en.Aux < lo-pad {
				continue // query ends below the swept interval
			}
			s := e.subs[SubID(en.Val)]
			q.Y1, q.Y2 = s.y1, s.y2
			if m.Matches(q) {
				e.hitSet[SubID(en.Val)] = struct{}{}
			}
		}
	}
	return e.hitSet, nil
}

// classBoundary returns the earliest future time at which the motion
// can cross a membership boundary of any query in the class: for an
// ascending object the next lower edge ahead of the window's leading
// position (an enter) or the next upper edge ahead of the object (a
// leave); mirrored via predecessor probes for a descending one. Static
// objects never cross anything.
func (e *Engine) classBoundary(cl *windowClass, m dual.Motion) (float64, error) {
	if geom.ApproxEq(m.V, 0) {
		return math.Inf(1), nil
	}
	y := m.At(e.now)
	lead := m.At(e.now + cl.w)
	t := math.Inf(1)
	var en bptree.Entry
	var ok bool
	var err error
	if m.V > 0 {
		if en, ok, err = cl.byY1.Ceil(lead - edgePad(m.V, lead)); err == nil && ok {
			t = e.now + (en.Key-y)/m.V - cl.w
		}
		if err == nil {
			if en, ok, err = cl.byY2.Ceil(y - edgePad(m.V, y)); err == nil && ok {
				if lt := e.now + (en.Key-y)/m.V; lt < t {
					t = lt
				}
			}
		}
	} else {
		if en, ok, err = cl.byY2.Pred(lead + edgePad(m.V, lead)); err == nil && ok {
			t = e.now + (en.Key-y)/m.V - cl.w
		}
		if err == nil {
			if en, ok, err = cl.byY1.Pred(y + edgePad(m.V, y)); err == nil && ok {
				if lt := e.now + (en.Key-y)/m.V; lt < t {
					t = lt
				}
			}
		}
	}
	if err != nil {
		return 0, fmt.Errorf("subscribe: boundary probe: %w", err)
	}
	return t, nil
}

// subBoundary returns the earliest future membership boundary of the
// motion against one query — the certificate-promotion check run when a
// new subscription arrives, closing the window between its edges and
// the object's already-scheduled certificate.
func subBoundary(m dual.Motion, y1, y2, w, now float64) float64 {
	if geom.ApproxEq(m.V, 0) {
		return math.Inf(1)
	}
	y := m.At(now)
	lead := m.At(now + w)
	t := math.Inf(1)
	if m.V > 0 {
		if y1 > lead-edgePad(m.V, lead) {
			t = now + (y1-y)/m.V - w
		}
		if y2 > y-edgePad(m.V, y) {
			if lt := now + (y2-y)/m.V; lt < t {
				t = lt
			}
		}
	} else {
		if y2 < lead+edgePad(m.V, lead) {
			t = now + (y2-y)/m.V - w
		}
		if y1 < y+edgePad(m.V, y) {
			if lt := now + (y1-y)/m.V; lt < t {
				t = lt
			}
		}
	}
	return t
}

// recert recomputes the object's single kinetic certificate: the
// earliest boundary across every populated class, scheduled slightly
// early and clamped strictly past the current time. The previous
// certificate is invalidated by the version bump, never searched for.
func (e *Engine) recert(oid dual.OID, o *object) error {
	t := math.Inf(1)
	for _, cl := range e.classes {
		if cl.count == 0 {
			continue
		}
		b, err := e.classBoundary(cl, o.m)
		if err != nil {
			return err
		}
		if b < t {
			t = b
		}
	}
	if math.IsInf(t, 1) {
		o.certVer++
		o.certTime = t
		return nil
	}
	e.arm(oid, o, t)
	return nil
}

// arm schedules a certificate for the raw boundary time t.
func (e *Engine) arm(oid dual.OID, o *object, t float64) {
	tc := t - certEarly
	floor := e.now + minStepRel*(1+math.Abs(e.now))
	if !(tc > floor) {
		tc = floor
	}
	o.certVer++
	o.certTime = tc
	e.agenda.Push(kinetic.Event{Time: tc, OID: oid, Ver: o.certVer})
}
