package subscribe

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
)

// storm starts n goroutines hammering the engine with motion updates
// until stop is closed; errors other than ErrClosed fail the test.
func storm(t *testing.T, e *Engine, n int, stop <-chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m := dual.Motion{
					OID: dual.OID(g*1000 + i%50),
					Y0:  rng.Float64() * 1000,
					T0:  0,
					V:   rng.Float64()*3 - 1.5,
				}
				if err := e.Apply([]Op{{Insert: true, M: m}}); err != nil {
					if errors.Is(err, ErrClosed) {
						return
					}
					t.Errorf("storm Apply: %v", err)
					return
				}
			}
		}(g)
	}
}

// TestUnsubscribeUnderStorm tears subscriptions down while updates pour
// in: after Unsubscribe returns, the dead subscription must never see
// another delta, its stream must be closed, and nothing may leak.
func TestUnsubscribeUnderStorm(t *testing.T) {
	leakcheck.Check(t)
	e, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	storm(t, e, 4, stop, &wg)

	for round := 0; round < 40; round++ {
		id, ch, serr := e.SubscribeStream(float64(round%10)*100, float64(round%10)*100+200, 20, 64)
		if serr != nil {
			t.Fatalf("SubscribeStream: %v", serr)
		}
		// Let a few deltas flow, then kill the subscription.
		if _, derr := e.Drain(id); derr != nil {
			t.Fatalf("Drain: %v", derr)
		}
		if uerr := e.Unsubscribe(id); uerr != nil {
			t.Fatalf("Unsubscribe: %v", uerr)
		}
		// The channel must be closed; consuming it to the end proves no
		// sender touches it afterwards (a send on closed would panic in
		// the updater goroutines and fail the race build immediately).
		for range ch {
			continue
		}
		if _, derr := e.Drain(id); !errors.Is(derr, ErrUnknownSub) {
			t.Fatalf("Drain after Unsubscribe: %v, want ErrUnknownSub", derr)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestCloseUnderStorm closes the engine while updaters, an advancer and
// drainers are all live: every goroutine must observe ErrClosed and
// exit, every stream channel must close, and no delta may be emitted
// after Close returns.
func TestCloseUnderStorm(t *testing.T) {
	leakcheck.Check(t)
	e, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	storm(t, e, 4, stop, &wg)

	var subs []SubID
	var chans []<-chan Delta
	for i := 0; i < 8; i++ {
		id, ch, serr := e.SubscribeStream(float64(i)*100, float64(i)*100+150, 10, 32)
		if serr != nil {
			t.Fatalf("SubscribeStream: %v", serr)
		}
		subs = append(subs, id)
		chans = append(chans, ch)
	}
	// An advancer with monotone time and drainers riding the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for now := 1.0; ; now++ {
			select {
			case <-stop:
				return
			default:
			}
			if aerr := e.Advance(now); aerr != nil {
				if errors.Is(aerr, ErrClosed) {
					return
				}
				t.Errorf("Advance: %v", aerr)
				return
			}
		}
	}()
	for _, id := range subs[:4] {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, derr := e.Drain(id); derr != nil {
					if errors.Is(derr, ErrClosed) {
						return
					}
					t.Errorf("Drain: %v", derr)
					return
				}
			}
		}()
	}

	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// After Close every channel must be closed — the ranges terminate —
	// and no goroutine can still emit (senders see ErrClosed). Deltas
	// delivered before the close are fine; the loop just drains them.
	for _, ch := range chans {
		for range ch {
			continue
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Apply(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after close: %v, want ErrClosed", err)
	}
}

// TestConcurrentSubscribeStress interleaves subscribe, unsubscribe,
// updates, advances and drains from many goroutines — the race-gated
// stage of verify.sh runs this under -race — then quiesces and checks
// the surviving subscriptions' member sets against brute force over the
// engine's own tracked motions.
func TestConcurrentSubscribeStress(t *testing.T) {
	leakcheck.Check(t)
	e, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer func() {
		if cerr := e.Close(); cerr != nil {
			t.Fatalf("Close: %v", cerr)
		}
	}()

	stop := make(chan struct{})
	var bg, wg sync.WaitGroup
	storm(t, e, 3, stop, &bg)

	var mu sync.Mutex
	liveSubs := make(map[SubID]struct{})
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var mine []SubID
			for i := 0; i < 200; i++ {
				if len(mine) > 0 && rng.Intn(3) == 0 {
					id := mine[rng.Intn(len(mine))]
					if uerr := e.Unsubscribe(id); uerr != nil && !errors.Is(uerr, ErrUnknownSub) {
						t.Errorf("Unsubscribe: %v", uerr)
						return
					}
					mu.Lock()
					delete(liveSubs, id)
					mu.Unlock()
					continue
				}
				y1 := rng.Float64() * 900
				id, serr := e.Subscribe(y1, y1+rng.Float64()*100, float64(rng.Intn(3)*10))
				if serr != nil {
					t.Errorf("Subscribe: %v", serr)
					return
				}
				mine = append(mine, id)
				mu.Lock()
				liveSubs[id] = struct{}{}
				mu.Unlock()
				if rng.Intn(2) == 0 {
					if _, derr := e.Drain(id); derr != nil && !errors.Is(derr, ErrUnknownSub) {
						t.Errorf("Drain: %v", derr)
						return
					}
				}
			}
		}(g)
	}
	bg.Add(1)
	go func() {
		defer bg.Done()
		for now := 1.0; ; now += 0.5 {
			select {
			case <-stop:
				return
			default:
			}
			if aerr := e.Advance(now); aerr != nil {
				t.Errorf("Advance: %v", aerr)
				return
			}
		}
	}()

	// The subscriber goroutines bound the test; then stop the storm and
	// the advancer before inspecting quiesced state.
	wg.Wait()
	close(stop)
	bg.Wait()

	// Quiesced: every surviving subscription's member set must equal
	// brute force against the engine's tracked motions at engine time.
	e.mu.Lock()
	motions := make([]dual.Motion, 0, len(e.objects))
	for _, o := range e.objects {
		motions = append(motions, o.m)
	}
	now := e.now
	e.mu.Unlock()
	mu.Lock()
	defer mu.Unlock()
	for id := range liveSubs {
		got, merr := e.Members(id)
		if merr != nil {
			t.Fatalf("Members(%d): %v", id, merr)
		}
		e.mu.Lock()
		s := e.subs[id]
		q := dual.MORQuery{Y1: s.y1, Y2: s.y2, T1: now, T2: now + s.class.w}
		e.mu.Unlock()
		want := make(map[dual.OID]bool)
		for _, m := range motions {
			if m.Matches(q) {
				want[m.OID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("sub %d: %d members, brute force %d", id, len(got), len(want))
		}
		for _, oid := range got {
			if !want[oid] {
				t.Fatalf("sub %d: spurious member %d", id, oid)
			}
		}
	}
}
