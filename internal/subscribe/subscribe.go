// Package subscribe is the continuous-query engine: standing MOR queries
// over the live stream of motion updates, maintained incrementally.
//
// A standing query ("subscription") is a spatial range [Y1, Y2] watched
// through a sliding time window: at engine time t it asks the MOR query
// [Y1, Y2] × [t, t+W]. The dual transform of §3.2 makes such a query a
// region in dual space, so the queries themselves are indexable: the
// engine stores every subscription in per-window-length B+-trees keyed by
// its range endpoints (the query-region structure), and a motion update
// probes those trees to find exactly the subscriptions whose answer can
// have changed — nothing is re-executed. Membership deltas are emitted as
// typed enter/leave events.
//
// Between updates, membership still changes as objects move across
// standing-query window boundaries. Those instants are kinetic events
// (internal/kinetic): for each object the engine keeps one certificate —
// the earliest future time at which the object can cross the nearest
// boundary of any standing query, found by successor/predecessor probes
// on the query trees — and Advance fires due certificates, re-evaluates
// only the affected object, and re-arms. Event volume is therefore
// output-sensitive: no boundary crossings, no work.
//
// The exact membership authority is always dual.Motion.Matches on the
// original motion; tree probes are candidate filters with conservative
// slack. That makes the engine's accumulated deltas reconstruct, at every
// checkpoint (after Apply or Advance), byte-identically the answer of
// re-running each standing query one-shot — the property the differential
// oracle suite asserts.
//
// The engine is a passive state machine guarded by one mutex: it owns no
// goroutines, so Close can never leak, and delta emission order is
// deterministic (affected subscriptions in SubID order per re-evaluation,
// certificate events in agenda order). Subscriptions are serving-side
// state, not durable state: the query trees live on a private in-memory
// store, and a recovered or bulk-reloaded shard re-seeds its engine via
// Reset.
package subscribe

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
)

// SubID identifies a subscription within one engine.
type SubID uint64

// Kind is the type of a membership delta.
type Kind uint8

const (
	// Enter reports an object joining a subscription's answer set.
	Enter Kind = iota + 1
	// Leave reports an object dropping out of it.
	Leave
)

// String returns the delta kind's name.
func (k Kind) String() string {
	switch k {
	case Enter:
		return "enter"
	case Leave:
		return "leave"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Delta is one membership transition of one subscription's answer set.
// Applying a drained delta sequence to a set, in order, reproduces the
// subscription's current one-shot answer.
type Delta struct {
	Seq  uint64   // engine-wide emission counter, strictly increasing
	Time float64  // engine time at emission
	Sub  SubID    // the subscription whose answer changed
	OID  dual.OID // the object that entered or left
	Kind Kind
}

// Op is one motion mutation, in the repository's usual delete+insert
// update convention.
type Op struct {
	Insert bool
	M      dual.Motion
}

// Config configures an engine. The query trees always use the exact
// Wide record codec: the stab filters assume unrounded keys.
type Config struct {
	// PageSize is the private query-store page size (0 selects
	// pager.DefaultPageSize).
	PageSize int
	// Start is the initial engine time (0 for fresh scenarios).
	Start float64
}

// Stats counts engine work, for benchmarks and tuning.
type Stats struct {
	Updates     uint64 // motion upserts processed
	Removes     uint64 // motion deletions processed
	CertFires   uint64 // kinetic certificates fired by Advance
	StaleEvents uint64 // agenda events skipped as invalidated
	Emitted     uint64 // deltas emitted across all subscriptions
	Candidates  uint64 // subscription candidates scanned by tree probes
	Compactions uint64 // agenda compactions
	Dropped     uint64 // stream deltas dropped on full channels
}

// ErrClosed reports use of a closed engine.
var ErrClosed = errors.New("subscribe: engine closed")

// ErrUnknownSub reports an operation on a subscription that does not
// exist (never created, or already unsubscribed).
var ErrUnknownSub = errors.New("subscribe: unknown subscription")

// object is the engine's view of one mobile object.
type object struct {
	m        dual.Motion
	member   map[SubID]struct{} // subscriptions currently containing it
	certTime float64            // scheduled certificate time (+Inf: none)
	certVer  uint64             // stamp of the one live agenda event
}

// sub is one standing query.
type sub struct {
	id      SubID
	y1, y2  float64
	class   *windowClass
	members map[dual.OID]struct{}
	buf     []Delta    // transitions since the last Drain
	ch      chan Delta // optional stream view (nil: drain-only)
}

// Engine maintains standing queries over a stream of motion updates.
type Engine struct {
	mu      sync.Mutex
	store   pager.Store // private in-memory store for the query trees
	objects map[dual.OID]*object
	classes map[uint64]*windowClass // keyed by math.Float64bits(window)
	subs    map[SubID]*sub
	agenda  *kinetic.Agenda
	now     float64
	nextSub SubID
	seq     uint64
	stats   Stats
	closed  bool

	// Re-evaluation scratch, reused across calls under mu: the match
	// path runs once per update and once per certificate fire, so its
	// buffers must not allocate in steady state.
	scanBuf  []bptree.Entry     // stab-scan result buffer (RangeAppend dst)
	hitSet   map[SubID]struct{} // matchSet result, valid until next matchSet
	leaveBuf []SubID
	enterBuf []SubID
}

// New builds an empty engine.
func New(cfg Config) (*Engine, error) {
	if math.IsNaN(cfg.Start) || math.IsInf(cfg.Start, 0) {
		return nil, fmt.Errorf("subscribe: non-finite start time %v", cfg.Start)
	}
	pageSize := cfg.PageSize
	if pageSize <= 0 {
		pageSize = pager.DefaultPageSize
	}
	return &Engine{
		store:   pager.NewMemStore(pageSize),
		objects: make(map[dual.OID]*object),
		classes: make(map[uint64]*windowClass),
		subs:    make(map[SubID]*sub),
		agenda:  kinetic.NewAgenda(),
		now:     cfg.Start,
		hitSet:  make(map[SubID]struct{}),
	}, nil
}

// Now returns the engine time.
func (e *Engine) Now() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Objects returns the number of tracked motions.
func (e *Engine) Objects() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.objects)
}

// Subs returns the number of standing queries.
func (e *Engine) Subs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.subs)
}

// Stats returns a snapshot of the work counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

func validMotion(m dual.Motion) error {
	if math.IsNaN(m.Y0) || math.IsInf(m.Y0, 0) ||
		math.IsNaN(m.T0) || math.IsInf(m.T0, 0) ||
		math.IsNaN(m.V) || math.IsInf(m.V, 0) {
		return fmt.Errorf("subscribe: non-finite motion %+v", m)
	}
	return nil
}

// Subscribe registers the standing query [y1, y2] watched through a
// sliding window of the given length, returning its id. The current
// answer set is delivered immediately as Enter deltas, so a drain-built
// set is complete from the first delta on.
func (e *Engine) Subscribe(y1, y2, window float64) (SubID, error) {
	id, _, err := e.subscribe(y1, y2, window, -1)
	return id, err
}

// SubscribeStream is Subscribe with a live channel view of the deltas,
// buffered to buf. The channel is best-effort: when it is full, deltas
// are dropped from the channel (counted in Stats.Dropped) but never from
// Drain, which stays exact. The channel is closed by Unsubscribe and by
// Close; nothing is sent after either.
func (e *Engine) SubscribeStream(y1, y2, window float64, buf int) (SubID, <-chan Delta, error) {
	if buf < 0 {
		buf = 0
	}
	return e.subscribe(y1, y2, window, buf)
}

func (e *Engine) subscribe(y1, y2, window float64, buf int) (SubID, <-chan Delta, error) {
	if math.IsNaN(y1) || math.IsInf(y1, 0) || math.IsNaN(y2) || math.IsInf(y2, 0) ||
		math.IsNaN(window) || math.IsInf(window, 0) {
		return 0, nil, fmt.Errorf("subscribe: non-finite range [%v,%v] window %v", y1, y2, window)
	}
	if y2 < y1 {
		return 0, nil, fmt.Errorf("subscribe: inverted range [%v,%v]", y1, y2)
	}
	if window < 0 {
		return 0, nil, fmt.Errorf("subscribe: negative window %v", window)
	}
	if math.Signbit(window) {
		window = 0 // fold -0 into the +0 window class
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, nil, ErrClosed
	}
	cl, err := e.classFor(window)
	if err != nil {
		return 0, nil, err
	}
	e.nextSub++
	id := e.nextSub
	if err := cl.byY1.Insert(bptree.Entry{Key: y1, Val: uint64(id), Aux: y2}); err != nil {
		return 0, nil, fmt.Errorf("subscribe: index query: %w", err)
	}
	if err := cl.byY2.Insert(bptree.Entry{Key: y2, Val: uint64(id), Aux: y1}); err != nil {
		return 0, nil, fmt.Errorf("subscribe: index query: %w", err)
	}
	cl.count++
	if y2-y1 > cl.maxWidth {
		cl.maxWidth = y2 - y1
	}
	s := &sub{id: id, y1: y1, y2: y2, class: cl, members: make(map[dual.OID]struct{})}
	if buf >= 0 {
		s.ch = make(chan Delta, buf)
	}
	e.subs[id] = s

	// Initial answer set and certificate promotion, in OID order: every
	// current member enters, and any object whose boundary against the
	// new query precedes its scheduled certificate gets an earlier one —
	// without this, a crossing of the new query's edges before the next
	// unrelated event would be missed.
	q := dual.MORQuery{Y1: y1, Y2: y2, T1: e.now, T2: e.now + window}
	oids := make([]dual.OID, 0, len(e.objects))
	for oid := range e.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		o := e.objects[oid]
		if o.m.Matches(q) {
			o.member[id] = struct{}{}
			s.members[oid] = struct{}{}
			e.emit(s, oid, Enter)
		}
		if t := subBoundary(o.m, y1, y2, window, e.now); t < o.certTime {
			e.arm(oid, o, t)
		}
	}
	return id, s.ch, nil
}

// Unsubscribe tears the standing query down. Undrained deltas are
// discarded and its stream channel (if any) is closed; no Leave deltas
// are emitted for its members.
func (e *Engine) Unsubscribe(id SubID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	s, ok := e.subs[id]
	if !ok {
		return fmt.Errorf("subscribe: unsubscribe %d: %w", id, ErrUnknownSub)
	}
	if err := s.class.byY1.Delete(s.y1, uint64(id)); err != nil {
		return fmt.Errorf("subscribe: unsubscribe %d: %w", id, err)
	}
	if err := s.class.byY2.Delete(s.y2, uint64(id)); err != nil {
		return fmt.Errorf("subscribe: unsubscribe %d: %w", id, err)
	}
	s.class.count--
	if s.class.count == 0 {
		s.class.maxWidth = 0 // no members left to widen the stab window for
	}
	for oid := range s.members {
		delete(e.objects[oid].member, id)
	}
	if s.ch != nil {
		close(s.ch)
	}
	delete(e.subs, id)
	return nil
}

// Apply feeds a batch of motion mutations at the current engine time.
// A delete immediately followed by an insert of the same object — the
// repository's update convention — is treated as one atomic motion
// change, so it emits only the net membership transitions.
func (e *Engine) Apply(ops []Op) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	for i := 0; i < len(ops); i++ {
		op := ops[i]
		if op.Insert {
			if err := e.upsert(op.M); err != nil {
				return err
			}
			continue
		}
		if i+1 < len(ops) && ops[i+1].Insert && ops[i+1].M.OID == op.M.OID {
			if err := e.upsert(ops[i+1].M); err != nil {
				return err
			}
			i++
			continue
		}
		if err := e.remove(op.M.OID); err != nil {
			return err
		}
	}
	e.maybeCompact()
	return nil
}

// Advance moves engine time forward to now and fires every due kinetic
// certificate: each fired object is re-evaluated against the query index
// exactly once and re-armed. After Advance returns, accumulated deltas
// reflect every boundary crossing up to and including now.
func (e *Engine) Advance(now float64) error {
	if math.IsNaN(now) || math.IsInf(now, 0) {
		return fmt.Errorf("subscribe: non-finite advance time %v", now)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	if now < e.now {
		return fmt.Errorf("subscribe: advance to %v behind engine time %v", now, e.now)
	}
	e.now = now
	for {
		ev, ok := e.agenda.PopDue(now)
		if !ok {
			break
		}
		o := e.objects[ev.OID]
		if o == nil || o.certVer != ev.Ver {
			e.stats.StaleEvents++
			continue
		}
		e.stats.CertFires++
		if err := e.refresh(ev.OID, o); err != nil {
			return err
		}
		// Certificates are clamped strictly past now on re-arm, so this
		// loop pops each live certificate at most once per Advance.
		if err := e.recert(ev.OID, o); err != nil {
			return err
		}
	}
	e.maybeCompact()
	return nil
}

// Drain returns the subscription's deltas accumulated since the last
// Drain, in emission order, and clears the buffer. It is the exact
// delivery path: unlike the stream channel it never drops.
func (e *Engine) Drain(id SubID) ([]Delta, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	s, ok := e.subs[id]
	if !ok {
		return nil, fmt.Errorf("subscribe: drain %d: %w", id, ErrUnknownSub)
	}
	out := s.buf
	s.buf = nil
	return out, nil
}

// Members returns the subscription's current answer set, sorted.
func (e *Engine) Members(id SubID) ([]dual.OID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	s, ok := e.subs[id]
	if !ok {
		return nil, fmt.Errorf("subscribe: members %d: %w", id, ErrUnknownSub)
	}
	out := make([]dual.OID, 0, len(s.members))
	for oid := range s.members {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Reset replaces the tracked motion population with ms (last motion wins
// on duplicate OIDs), re-evaluating every standing query: objects that
// disappear emit Leave, (re)loaded objects emit their net transitions.
// This is the bulk-load/recovery hook — the shard calls it when its index
// contents are atomically replaced.
func (e *Engine) Reset(ms []dual.Motion) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	keep := make(map[dual.OID]struct{}, len(ms))
	for _, m := range ms {
		keep[m.OID] = struct{}{}
	}
	gone := make([]dual.OID, 0)
	for oid := range e.objects {
		if _, ok := keep[oid]; !ok {
			gone = append(gone, oid)
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i] < gone[j] })
	for _, oid := range gone {
		if err := e.remove(oid); err != nil {
			return err
		}
	}
	for _, m := range ms {
		if err := e.upsert(m); err != nil {
			return err
		}
	}
	e.maybeCompact()
	return nil
}

// Close shuts the engine down: every stream channel is closed, the query
// trees are destroyed, and every further call fails with ErrClosed — no
// delta is ever emitted after Close. Close is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	var errs []error
	for _, s := range e.subs {
		if s.ch != nil {
			close(s.ch)
		}
	}
	for _, cl := range e.classes {
		if err := cl.byY1.Destroy(); err != nil {
			errs = append(errs, err)
		}
		if err := cl.byY2.Destroy(); err != nil {
			errs = append(errs, err)
		}
	}
	e.subs = nil
	e.objects = nil
	e.classes = nil
	e.agenda = nil
	return errors.Join(errs...)
}

// emit appends one delta to the subscription's drain buffer and offers
// it to the stream channel.
func (e *Engine) emit(s *sub, oid dual.OID, k Kind) {
	e.seq++
	e.stats.Emitted++
	d := Delta{Seq: e.seq, Time: e.now, Sub: s.id, OID: oid, Kind: k}
	s.buf = append(s.buf, d)
	if s.ch != nil {
		select {
		case s.ch <- d:
		default:
			e.stats.Dropped++
		}
	}
}

// upsert installs or replaces one motion and re-evaluates it.
func (e *Engine) upsert(m dual.Motion) error {
	if err := validMotion(m); err != nil {
		return err
	}
	o := e.objects[m.OID]
	if o == nil {
		o = &object{member: make(map[SubID]struct{}), certTime: math.Inf(1)}
		e.objects[m.OID] = o
	}
	o.m = m
	e.stats.Updates++
	if err := e.refresh(m.OID, o); err != nil {
		return err
	}
	return e.recert(m.OID, o)
}

// remove drops one motion, emitting Leave for every membership. Unknown
// OIDs are a no-op, so delete ops are idempotent.
func (e *Engine) remove(oid dual.OID) error {
	o := e.objects[oid]
	if o == nil {
		return nil
	}
	ids := make([]SubID, 0, len(o.member))
	for id := range o.member {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := e.subs[id]
		delete(s.members, oid)
		e.emit(s, oid, Leave)
	}
	delete(e.objects, oid) // orphans the agenda event; pop skips it
	e.stats.Removes++
	return nil
}

// refresh recomputes the object's exact membership across all standing
// queries and emits the difference: leaves then enters, each in SubID
// order.
func (e *Engine) refresh(oid dual.OID, o *object) error {
	got, err := e.matchSet(o.m)
	if err != nil {
		return err
	}
	leave, enter := e.leaveBuf[:0], e.enterBuf[:0]
	for id := range o.member {
		if _, ok := got[id]; !ok {
			leave = append(leave, id)
		}
	}
	for id := range got {
		if _, ok := o.member[id]; !ok {
			enter = append(enter, id)
		}
	}
	e.leaveBuf, e.enterBuf = leave, enter
	sort.Slice(leave, func(i, j int) bool { return leave[i] < leave[j] })
	sort.Slice(enter, func(i, j int) bool { return enter[i] < enter[j] })
	for _, id := range leave {
		s := e.subs[id]
		delete(o.member, id)
		delete(s.members, oid)
		e.emit(s, oid, Leave)
	}
	for _, id := range enter {
		s := e.subs[id]
		o.member[id] = struct{}{}
		s.members[oid] = struct{}{}
		e.emit(s, oid, Enter)
	}
	return nil
}

// maybeCompact drops stale agenda events once they can outnumber the one
// live certificate per object.
func (e *Engine) maybeCompact() {
	if e.agenda.Len() <= 2*len(e.objects)+64 {
		return
	}
	e.agenda.Compact(func(ev kinetic.Event) bool {
		o := e.objects[ev.OID]
		return o != nil && o.certVer == ev.Ver
	})
	e.stats.Compactions++
}
