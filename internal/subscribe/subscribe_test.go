package subscribe

import (
	"errors"
	"reflect"
	"testing"

	"mobidx/internal/dual"
)

func mustEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	})
	return e
}

func update(t *testing.T, e *Engine, m dual.Motion) {
	t.Helper()
	old, ok := currentOf(e, m.OID)
	var ops []Op
	if ok {
		ops = append(ops, Op{Insert: false, M: old})
	}
	ops = append(ops, Op{Insert: true, M: m})
	if err := e.Apply(ops); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

// currentOf peeks at the engine's tracked motion (test-only; the engine
// package owns the lock).
func currentOf(e *Engine, oid dual.OID) (dual.Motion, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o := e.objects[oid]
	if o == nil {
		return dual.Motion{}, false
	}
	return o.m, true
}

func members(t *testing.T, e *Engine, id SubID) []dual.OID {
	t.Helper()
	ms, err := e.Members(id)
	if err != nil {
		t.Fatalf("Members(%d): %v", id, err)
	}
	return ms
}

func drain(t *testing.T, e *Engine, id SubID) []Delta {
	t.Helper()
	ds, err := e.Drain(id)
	if err != nil {
		t.Fatalf("Drain(%d): %v", id, err)
	}
	return ds
}

func TestSubscribeInitialMembersAndUpdates(t *testing.T) {
	e := mustEngine(t)
	update(t, e, dual.Motion{OID: 1, Y0: 50, T0: 0, V: 0})
	update(t, e, dual.Motion{OID: 2, Y0: 500, T0: 0, V: 1})

	id, err := e.Subscribe(40, 60, 10)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{1}) {
		t.Fatalf("initial members %v, want [1]", got)
	}
	ds := drain(t, e, id)
	if len(ds) != 1 || ds[0].Kind != Enter || ds[0].OID != 1 {
		t.Fatalf("initial deltas %v, want one enter for OID 1", ds)
	}

	// Move object 2 into range, object 1 out of range.
	update(t, e, dual.Motion{OID: 2, Y0: 55, T0: 0, V: 0})
	update(t, e, dual.Motion{OID: 1, Y0: 900, T0: 0, V: 0})
	ds = drain(t, e, id)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas %v, want 2", len(ds), ds)
	}
	if ds[0].Kind != Enter || ds[0].OID != 2 || ds[1].Kind != Leave || ds[1].OID != 1 {
		t.Fatalf("deltas %v, want enter(2) then leave(1)", ds)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{2}) {
		t.Fatalf("members %v, want [2]", got)
	}
}

func TestUpdatePairEmitsNetTransitionsOnly(t *testing.T) {
	e := mustEngine(t)
	id, err := e.Subscribe(0, 1000, 10)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	m := dual.Motion{OID: 7, Y0: 500, T0: 0, V: 1}
	update(t, e, m)
	drain(t, e, id)
	// A velocity change that keeps the object inside the (whole-terrain)
	// query must not emit a leave/enter flap.
	update(t, e, dual.Motion{OID: 7, Y0: 500, T0: 0, V: -1})
	if ds := drain(t, e, id); len(ds) != 0 {
		t.Fatalf("paired update emitted %v, want nothing", ds)
	}
}

func TestKineticEnterAndLeave(t *testing.T) {
	e := mustEngine(t)
	// Object at 0 moving up at 1; fence [100, 110] with window 10: it
	// becomes a member when the window reaches the fence (t = 90) and
	// leaves when the object passes the fence top (t = 110).
	update(t, e, dual.Motion{OID: 3, Y0: 0, T0: 0, V: 1})
	id, err := e.Subscribe(100, 110, 10)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if got := members(t, e, id); len(got) != 0 {
		t.Fatalf("premature members %v", got)
	}
	if err := e.Advance(89); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); len(got) != 0 {
		t.Fatalf("members %v before window reaches fence", got)
	}
	if err := e.Advance(91); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	ds := drain(t, e, id)
	if len(ds) != 1 || ds[0].Kind != Enter || ds[0].OID != 3 {
		t.Fatalf("deltas %v, want enter(3) at the window boundary", ds)
	}
	if err := e.Advance(109); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{3}) {
		t.Fatalf("members %v while inside", got)
	}
	if err := e.Advance(111); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	ds = drain(t, e, id)
	if len(ds) != 1 || ds[0].Kind != Leave || ds[0].OID != 3 {
		t.Fatalf("deltas %v, want leave(3) past the fence", ds)
	}
}

func TestKineticDescendingObject(t *testing.T) {
	e := mustEngine(t)
	update(t, e, dual.Motion{OID: 4, Y0: 200, T0: 0, V: -1})
	id, err := e.Subscribe(90, 100, 5)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// Window reaches the fence top at t = 95, object exits below at 110.
	if err := e.Advance(94); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); len(got) != 0 {
		t.Fatalf("premature members %v", got)
	}
	if err := e.Advance(96); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{4}) {
		t.Fatalf("members %v, want [4]", got)
	}
	if err := e.Advance(111); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); len(got) != 0 {
		t.Fatalf("members %v after exit", got)
	}
}

func TestSubscribePromotesCertificates(t *testing.T) {
	e := mustEngine(t)
	// Object with no standing queries has no certificate; a subscription
	// ahead of it must still fire on time.
	update(t, e, dual.Motion{OID: 5, Y0: 0, T0: 0, V: 2})
	id, err := e.Subscribe(100, 120, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if err := e.Advance(51); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{5}) {
		t.Fatalf("members %v, want [5] (promotion missed the crossing)", got)
	}
}

func TestDeleteEmitsLeaves(t *testing.T) {
	e := mustEngine(t)
	m := dual.Motion{OID: 9, Y0: 10, T0: 0, V: 0}
	update(t, e, m)
	id, err := e.Subscribe(0, 20, 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	drain(t, e, id)
	if err := e.Apply([]Op{{Insert: false, M: m}}); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	ds := drain(t, e, id)
	if len(ds) != 1 || ds[0].Kind != Leave || ds[0].OID != 9 {
		t.Fatalf("deltas %v, want leave(9)", ds)
	}
	// Deleting an unknown object is a no-op.
	if err := e.Apply([]Op{{Insert: false, M: m}}); err != nil {
		t.Fatalf("idempotent delete: %v", err)
	}
}

func TestUnsubscribe(t *testing.T) {
	e := mustEngine(t)
	update(t, e, dual.Motion{OID: 1, Y0: 10, T0: 0, V: 0})
	id, ch, err := e.SubscribeStream(0, 20, 1, 8)
	if err != nil {
		t.Fatalf("SubscribeStream: %v", err)
	}
	if err := e.Unsubscribe(id); err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	// Channel must be closed (after draining the initial enter).
	n := 0
	for range ch {
		n++
	}
	if n != 1 {
		t.Fatalf("stream delivered %d deltas before close, want 1", n)
	}
	if _, err := e.Drain(id); !errors.Is(err, ErrUnknownSub) {
		t.Fatalf("Drain after unsubscribe: %v, want ErrUnknownSub", err)
	}
	if err := e.Unsubscribe(id); !errors.Is(err, ErrUnknownSub) {
		t.Fatalf("double Unsubscribe: %v, want ErrUnknownSub", err)
	}
	// Updates after unsubscribe must not touch the dead subscription.
	update(t, e, dual.Motion{OID: 1, Y0: 500, T0: 0, V: 0})
	update(t, e, dual.Motion{OID: 1, Y0: 10, T0: 0, V: 0})
}

func TestCloseSemantics(t *testing.T) {
	e, err := New(Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := e.Apply([]Op{{Insert: true, M: dual.Motion{OID: 1, Y0: 5}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	id, ch, err := e.SubscribeStream(0, 10, 1, 4)
	if err != nil {
		t.Fatalf("SubscribeStream: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for range ch {
		// drain until closed
	}
	if _, err := e.Drain(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after close: %v, want ErrClosed", err)
	}
	if err := e.Apply(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Apply after close: %v, want ErrClosed", err)
	}
	if err := e.Advance(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Advance after close: %v, want ErrClosed", err)
	}
	if _, err := e.Subscribe(0, 1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close: %v, want ErrClosed", err)
	}
}

func TestValidation(t *testing.T) {
	e := mustEngine(t)
	if _, err := e.Subscribe(10, 5, 1); err == nil {
		t.Fatalf("inverted range accepted")
	}
	if _, err := e.Subscribe(0, 1, -1); err == nil {
		t.Fatalf("negative window accepted")
	}
	nan := dual.Motion{OID: 1, Y0: 0, T0: 0}
	nan.Y0 = nan.Y0 / nan.T0 // NaN without literals
	if err := e.Apply([]Op{{Insert: true, M: nan}}); err == nil {
		t.Fatalf("non-finite motion accepted")
	}
	if err := e.Advance(5); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if err := e.Advance(4); err == nil {
		t.Fatalf("time moved backwards")
	}
}

func TestZeroWindowAndStaticObjects(t *testing.T) {
	e := mustEngine(t)
	update(t, e, dual.Motion{OID: 1, Y0: 50, T0: 0, V: 0})
	id, err := e.Subscribe(49, 51, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{1}) {
		t.Fatalf("members %v, want [1]", got)
	}
	if err := e.Advance(1000); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{1}) {
		t.Fatalf("static object drifted out: %v", got)
	}
}

func TestReset(t *testing.T) {
	e := mustEngine(t)
	update(t, e, dual.Motion{OID: 1, Y0: 10, T0: 0, V: 0})
	update(t, e, dual.Motion{OID: 2, Y0: 500, T0: 0, V: 0})
	id, err := e.Subscribe(0, 20, 1)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	drain(t, e, id)
	// Replace the population: 1 disappears, 3 lands inside the query.
	if err := e.Reset([]dual.Motion{
		{OID: 2, Y0: 500, T0: 0, V: 0},
		{OID: 3, Y0: 15, T0: 0, V: 0},
	}); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := members(t, e, id); !reflect.DeepEqual(got, []dual.OID{3}) {
		t.Fatalf("members %v, want [3]", got)
	}
	ds := drain(t, e, id)
	if len(ds) != 2 || ds[0].Kind != Leave || ds[0].OID != 1 || ds[1].Kind != Enter || ds[1].OID != 3 {
		t.Fatalf("deltas %v, want leave(1) then enter(3)", ds)
	}
}

func TestDeltaSequencingAndDeterminism(t *testing.T) {
	run := func() []Delta {
		e, err := New(Config{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		defer func() {
			if cerr := e.Close(); cerr != nil {
				t.Fatalf("Close: %v", cerr)
			}
		}()
		var all []Delta
		ids := make([]SubID, 0, 4)
		for i := 0; i < 4; i++ {
			id, serr := e.Subscribe(float64(i*100), float64(i*100+150), 20)
			if serr != nil {
				t.Fatalf("Subscribe: %v", serr)
			}
			ids = append(ids, id)
		}
		for step := 0; step < 40; step++ {
			m := dual.Motion{OID: dual.OID(step % 7), Y0: float64(step * 13 % 400), T0: float64(step), V: 1}
			if aerr := e.Apply([]Op{{Insert: true, M: m}}); aerr != nil {
				t.Fatalf("Apply: %v", aerr)
			}
			if aerr := e.Advance(float64(step + 1)); aerr != nil {
				t.Fatalf("Advance: %v", aerr)
			}
			for _, id := range ids {
				ds, derr := e.Drain(id)
				if derr != nil {
					t.Fatalf("Drain: %v", derr)
				}
				all = append(all, ds...)
			}
		}
		return all
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs emitted different delta streams:\n%v\n%v", a, b)
	}
	perSub := make(map[SubID]uint64)
	global := make(map[uint64]bool)
	for _, d := range a {
		if global[d.Seq] {
			t.Fatalf("duplicate Seq %d", d.Seq)
		}
		global[d.Seq] = true
		if d.Seq <= perSub[d.Sub] {
			t.Fatalf("non-increasing Seq within sub %d", d.Sub)
		}
		perSub[d.Sub] = d.Seq
	}
}
