// Parallel query paths for the 2-dimensional methods: both Index2D
// implementations expose a QueryParallel that decomposes the query into
// independent read-only subqueries, runs them on a bounded core.Executor,
// and merges deterministically — sorted ascending by OID, deduplicated —
// so the output is byte-identical for every worker count. A one-worker
// executor is the sequential reference implementation the differential
// tests compare against.
package twod

import (
	"mobidx/internal/core"
	"mobidx/internal/dual"
)

// QueryParallel answers q by running the four quadrant scans of every live
// generation concurrently on exec. The returned OIDs are sorted ascending
// and deduplicated; the slice is identical for every worker count.
// Subqueries only read index pages, so QueryParallel may run concurrently
// with other queries but not with Insert/Delete.
func (k *KD4) QueryParallel(exec *core.Executor, q MOR2Query) ([]dual.OID, error) {
	var subs []func(emit func(dual.OID)) error
	for _, g := range k.rot.Live() {
		subs = append(subs, g.subqueries(q)...)
	}
	return core.RunSubqueries(exec, subs)
}

// QueryParallel answers q by running the two per-axis 1-dimensional MOR
// queries — themselves decomposed into their Lemma 1 pieces — concurrently
// on one shared worker pool, then intersecting the per-axis answers by
// object id and filtering with the exact 2-dimensional predicate. The
// returned OIDs are sorted ascending and deduplicated; the slice is
// identical for every worker count. Safe to run concurrently with other
// queries, but not with Insert/Delete.
func (d *Decomposed) QueryParallel(exec *core.Executor, q MOR2Query) ([]dual.OID, error) {
	xq := dual.MORQuery{Y1: q.X1, Y2: q.X2, T1: q.T1, T2: q.T2}
	yq := dual.MORQuery{Y1: q.Y1, Y2: q.Y2, T1: q.T1, T2: q.T2}
	xsubs := d.xIndex.Subqueries(xq)
	ysubs := d.yIndex.Subqueries(yq)

	// One flat task list over both axes: the pieces of the slower axis
	// don't wait for the faster axis to finish.
	nx := len(xsubs)
	buckets := make([][]dual.OID, nx+len(ysubs))
	tasks := make([]func() error, 0, len(buckets))
	for i, sq := range xsubs {
		i, sq := i, sq
		tasks = append(tasks, func() error {
			return sq(func(id dual.OID) { buckets[i] = append(buckets[i], id) })
		})
	}
	for j, sq := range ysubs {
		j, sq := nx+j, sq
		tasks = append(tasks, func() error {
			return sq(func(id dual.OID) { buckets[j] = append(buckets[j], id) })
		})
	}
	if err := exec.Run(tasks); err != nil {
		return nil, err
	}

	xIDs := core.MergeOIDs(buckets[:nx])
	yIDs := core.MergeOIDs(buckets[nx:])
	// Intersect two sorted slices; the result inherits sortedness.
	var out []dual.OID
	i, j := 0, 0
	for i < len(xIDs) && j < len(yIDs) {
		switch {
		case xIDs[i] < yIDs[j]:
			i++
		case xIDs[i] > yIDs[j]:
			j++
		default:
			if m, ok := d.motions[xIDs[i]]; ok && m.Matches(q) {
				out = append(out, xIDs[i])
			}
			i++
			j++
		}
	}
	return out, nil
}
