package twod

import (
	"runtime"
	"sort"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/leakcheck"
	"mobidx/internal/pager"
)

type parallelQuerier interface {
	Index2D
	QueryParallel(exec *core.Executor, q MOR2Query) ([]dual.OID, error)
}

func sameOIDs2(a, b []dual.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runParallelDifferential2 churns an index and, at each checkpoint, asserts
// that QueryParallel is byte-identical across worker counts 1, 2, 8 and
// GOMAXPROCS, and set-equal to the sequential Query path on the same index
// (exact — both read the same pages, so codec rounding cancels out).
// exactOracle additionally pins the answer to the brute-force motion table.
func runParallelDifferential2(t *testing.T, mk func(st pager.Store) parallelQuerier, exactOracle bool, seed int64) {
	t.Helper()
	leakcheck.Check(t)
	ix := mk(pager.NewMemStore(1024))
	s := newSim2(seed)
	for i := 0; i < 250; i++ {
		s.spawn(ix, t)
	}
	workerCounts := []int{1, 2, 8, runtime.GOMAXPROCS(0)}
	execs := make([]*core.Executor, len(workerCounts))
	for i, w := range workerCounts {
		execs[i] = core.NewExecutor(w)
	}
	for step := 0; step < 25; step++ {
		s.tick(ix, 4, t)
		s.churn(ix, 8, t)
		if step%4 != 0 {
			continue
		}
		for _, q := range []MOR2Query{
			s.randQuery(15, 10),
			s.randQuery(60, 25),
			s.randQuery(30, 0), // instant query
		} {
			ref, err := ix.QueryParallel(execs[0], q)
			if err != nil {
				t.Fatalf("step %d: sequential reference: %v", step, err)
			}
			for i := 1; i < len(execs); i++ {
				got, err := ix.QueryParallel(execs[i], q)
				if err != nil {
					t.Fatalf("step %d workers %d: %v", step, workerCounts[i], err)
				}
				if !sameOIDs2(ref, got) {
					t.Fatalf("step %d workers %d: parallel result diverged\nq=%+v\nref=%v\ngot=%v",
						step, workerCounts[i], q, ref, got)
				}
			}
			seen := make(map[dual.OID]bool)
			if err := ix.Query(q, func(id dual.OID) { seen[id] = true }); err != nil {
				t.Fatalf("sequential Query: %v", err)
			}
			seq := make([]dual.OID, 0, len(seen))
			for id := range seen {
				seq = append(seq, id)
			}
			sort.Slice(seq, func(i, j int) bool { return seq[i] < seq[j] })
			if !sameOIDs2(ref, seq) {
				t.Fatalf("step %d: parallel vs sequential diverged\nq=%+v\npar=%v\nseq=%v",
					step, q, ref, seq)
			}
			if exactOracle {
				want := make([]dual.OID, 0, 16)
				for id, m := range s.cur {
					if m.Matches(q) {
						want = append(want, id)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				if !sameOIDs2(ref, want) {
					t.Fatalf("step %d: parallel vs oracle diverged\nq=%+v\ngot=%v\nwant=%v",
						step, q, ref, want)
				}
			}
		}
	}
}

func TestKD4QueryParallelDifferential(t *testing.T) {
	mk := func(st pager.Store) parallelQuerier {
		ix, err := NewKD4(st, KD4Config{Terrain: terr})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	// KD4 pages round to float32, so only same-index comparisons are
	// exact; the oracle check stays off.
	runParallelDifferential2(t, mk, false, 171)
}

func TestDecomposedQueryParallelDifferential(t *testing.T) {
	mk := func(st pager.Store) parallelQuerier {
		ix, err := NewDecomposed(st, DecomposedConfig{Terrain: terr, C: 4, Codec: bptree.Wide})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	// Wide codec stores exact float64 images: the brute-force oracle must
	// match with zero tolerance.
	runParallelDifferential2(t, mk, true, 173)
}
