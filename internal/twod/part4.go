package twod

import (
	"fmt"

	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
	"mobidx/internal/parttree"
)

// PartTree4Config configures the 4-dimensional partition-tree method.
type PartTree4Config struct {
	Terrain Terrain2D
}

// PartTree4 realizes the §4.2 remark that the two-dimensional MOR query,
// mapped to a simplex in the 4-dimensional dual space (vx, ax, vy, ay),
// can be answered by a 4-dimensional partition tree in O(n^(3/4+ε) + k)
// I/Os — "almost matching the lower bound for four dimensions". Like the
// other dual indexes it keeps four quadrant trees per generation (one per
// velocity-sign pair) under the §3.2 rotation.
type PartTree4 struct {
	cfg PartTree4Config
	rot *core.Rotator[Motion2D, *part4Gen]
}

// NewPartTree4 creates the index on the given store.
func NewPartTree4(store pager.Store, cfg PartTree4Config) (*PartTree4, error) {
	t := cfg.Terrain
	if t.XMax <= 0 || t.YMax <= 0 || t.VMin <= 0 || t.VMax < t.VMin {
		return nil, fmt.Errorf("twod: invalid terrain %+v", t)
	}
	p := &PartTree4{cfg: cfg}
	rot, err := core.NewRotator(t.TPeriod(), motion2DTime, func(tref float64) (*part4Gen, error) {
		g := &part4Gen{cfg: cfg, tref: tref}
		for q := 0; q < 4; q++ {
			tree, err := parttree.NewND(store, 4)
			if err != nil {
				return nil, err
			}
			g.quads[q] = tree
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	p.rot = rot
	return p, nil
}

// Insert implements Index2D.
func (p *PartTree4) Insert(m Motion2D) error {
	if err := p.cfg.Terrain.validate(m); err != nil {
		return err
	}
	return p.rot.Insert(m)
}

// Delete implements Index2D.
func (p *PartTree4) Delete(m Motion2D) error { return p.rot.Delete(m) }

// Len implements Index2D.
func (p *PartTree4) Len() int { return p.rot.Len() }

// Query implements Index2D.
func (p *PartTree4) Query(q MOR2Query, emit func(dual.OID)) error {
	for _, g := range p.rot.Live() {
		if err := g.Query(q, emit); err != nil {
			return err
		}
	}
	return nil
}

type part4Gen struct {
	cfg   PartTree4Config
	tref  float64
	quads [4]*parttree.NDTree
	size  int
}

func (g *part4Gen) dualPoint(m Motion2D) []float64 {
	x, y := m.At(g.tref)
	return []float64{m.VX, x, m.VY, y}
}

func (g *part4Gen) Len() int { return g.size }

func (g *part4Gen) Insert(m Motion2D) error {
	tree := g.quads[quadrant(m.VX, m.VY)]
	if err := tree.Insert(parttree.NDPoint{Coords: g.dualPoint(m), Val: uint64(m.OID)}); err != nil {
		return err
	}
	g.size++
	return nil
}

func (g *part4Gen) Delete(m Motion2D) error {
	tree := g.quads[quadrant(m.VX, m.VY)]
	found, err := tree.Delete(parttree.NDPoint{Coords: g.dualPoint(m), Val: uint64(m.OID)})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("twod: motion of object %d not found in 4D partition tree", m.OID)
	}
	g.size--
	return nil
}

func (g *part4Gen) Query(q MOR2Query, emit func(dual.OID)) error {
	for quad := 0; quad < 4; quad++ {
		negX := quad&1 != 0
		negY := quad&2 != 0
		cs := constraints4(q, g.tref, g.cfg.Terrain, negX, negY)
		err := g.quads[quad].SearchConstraints(cs, func(p parttree.NDPoint) bool {
			m := Motion2D{
				OID: dual.OID(p.Val),
				X0:  p.Coords[1], Y0: p.Coords[3],
				T0: g.tref,
				VX: p.Coords[0], VY: p.Coords[2],
			}
			if m.Matches(q) {
				emit(m.OID)
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

func (g *part4Gen) Destroy() error {
	for _, t := range g.quads {
		if err := t.Destroy(); err != nil {
			return err
		}
	}
	return nil
}

// Interface compliance.
var _ Index2D = (*PartTree4)(nil)
