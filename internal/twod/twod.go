// Package twod implements the full 2-dimensional problem of §4.2: objects
// move freely in the rectangle [0, XMax] × [0, YMax] with a constant
// velocity vector, and the two-dimensional MOR query asks which objects
// are inside a query rectangle at some instant of a future time window.
//
// Two methods are provided, mirroring the paper's discussion:
//
//   - KD4: project the trajectory onto the (x, t) and (y, t) planes and
//     take the Hough-X dual of each, giving the 4-dimensional point
//     (vx, ax, vy, ay). The query becomes a conjunction of the two planes'
//     Proposition 1 wedges — a simplex in ℝ⁴ — answered by a paged
//     4-dimensional k-d tree (package kdnd), with candidates filtered
//     exactly (the conjunction alone over-approximates, because the x- and
//     y-conditions may hold at different instants).
//
//   - Decomposed: answer two 1-dimensional MOR queries, one per axis, with
//     the Dual-B+ method of §3.5.2, intersect the answer sets by object
//     id, and filter exactly. This is the paper's "decompose the motion
//     into two independent motions" alternative.
//
// Both use the §3.2 generation rotation to keep dual intercepts bounded.
//
// Per-axis speed model: each velocity component satisfies
// VMin ≤ |vx|, |vy| ≤ VMax, the assumption under which both the per-axis
// dual transforms and the per-axis forced-update period are valid (an
// object hits some border within min(XMax, YMax)/VMin).
package twod

import (
	"fmt"
	"math"

	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kdnd"
	"mobidx/internal/pager"
)

// Motion2D is the motion information of one object in the plane.
type Motion2D struct {
	OID    dual.OID
	X0, Y0 float64 // position at time T0
	T0     float64
	VX, VY float64
}

// At returns the object's position at time t.
func (m Motion2D) At(t float64) (x, y float64) {
	return m.X0 + m.VX*(t-m.T0), m.Y0 + m.VY*(t-m.T0)
}

// XMotion and YMotion project the motion per axis.
func (m Motion2D) XMotion() dual.Motion {
	return dual.Motion{OID: m.OID, Y0: m.X0, T0: m.T0, V: m.VX}
}

// YMotion projects the motion onto the y axis.
func (m Motion2D) YMotion() dual.Motion {
	return dual.Motion{OID: m.OID, Y0: m.Y0, T0: m.T0, V: m.VY}
}

// MOR2Query is the two-dimensional MOR query of §2.
type MOR2Query struct {
	X1, X2 float64
	Y1, Y2 float64
	T1, T2 float64
}

// Matches is the exact membership predicate: the object is inside the
// rectangle at some instant of [T1, T2] iff the per-axis residence time
// intervals and the window have a common point.
func (m Motion2D) Matches(q MOR2Query) bool {
	lo, hi := q.T1, q.T2
	clip := func(p0, v, a, b float64) bool {
		// Times with a <= p0 + v·(t−T0) <= b.
		if geom.ApproxEq(v, 0) {
			return p0 >= a-geom.Eps && p0 <= b+geom.Eps
		}
		tA := m.T0 + (a-p0)/v
		tB := m.T0 + (b-p0)/v
		if tA > tB {
			tA, tB = tB, tA
		}
		if tA > lo {
			lo = tA
		}
		if tB < hi {
			hi = tB
		}
		return true
	}
	if !clip(m.X0, m.VX, q.X1, q.X2) {
		return false
	}
	if !clip(m.Y0, m.VY, q.Y1, q.Y2) {
		return false
	}
	return lo <= hi+1e-9
}

// Terrain2D bounds the plane and the per-axis speed band.
type Terrain2D struct {
	XMax, YMax float64
	VMin, VMax float64
}

// TPeriod is the forced-update bound: an object reaches some border within
// min(XMax, YMax)/VMin.
func (t Terrain2D) TPeriod() float64 { return math.Min(t.XMax, t.YMax) / t.VMin }

func (t Terrain2D) xTerrain() dual.Terrain {
	return dual.Terrain{YMax: t.XMax, VMin: t.VMin, VMax: t.VMax}
}

func (t Terrain2D) yTerrain() dual.Terrain {
	return dual.Terrain{YMax: t.YMax, VMin: t.VMin, VMax: t.VMax}
}

func (t Terrain2D) validate(m Motion2D) error {
	for _, v := range []float64{m.VX, m.VY} {
		s := math.Abs(v)
		if s < t.VMin-1e-12 || s > t.VMax+1e-12 {
			return fmt.Errorf("twod: component speed %v outside [%v, %v]", v, t.VMin, t.VMax)
		}
	}
	if m.X0 < -1e-9 || m.X0 > t.XMax+1e-9 || m.Y0 < -1e-9 || m.Y0 > t.YMax+1e-9 {
		return fmt.Errorf("twod: position (%v, %v) outside terrain", m.X0, m.Y0)
	}
	return nil
}

// Index2D answers two-dimensional MOR queries.
type Index2D interface {
	Insert(m Motion2D) error
	Delete(m Motion2D) error
	Query(q MOR2Query, emit func(dual.OID)) error
	Len() int
}

func motion2DTime(m Motion2D) float64 { return m.T0 }

// ---------------------------------------------------------------------------
// KD4: 4-dimensional dual k-d tree
// ---------------------------------------------------------------------------

// KD4Config configures the 4-dimensional dual method.
type KD4Config struct {
	Terrain Terrain2D
}

// KD4 indexes the 4-dimensional dual points (vx, ax, vy, ay).
type KD4 struct {
	cfg KD4Config
	rot *core.Rotator[Motion2D, *kd4Gen]
}

// NewKD4 creates the index on the given store.
func NewKD4(store pager.Store, cfg KD4Config) (*KD4, error) {
	t := cfg.Terrain
	if t.XMax <= 0 || t.YMax <= 0 || t.VMin <= 0 || t.VMax < t.VMin {
		return nil, fmt.Errorf("twod: invalid terrain %+v", t)
	}
	k := &KD4{cfg: cfg}
	rot, err := core.NewRotator(t.TPeriod(), motion2DTime, func(tref float64) (*kd4Gen, error) {
		return newKD4Gen(store, cfg, tref)
	})
	if err != nil {
		return nil, err
	}
	k.rot = rot
	return k, nil
}

// Insert implements Index2D.
func (k *KD4) Insert(m Motion2D) error {
	if err := k.cfg.Terrain.validate(m); err != nil {
		return err
	}
	return k.rot.Insert(m)
}

// Delete implements Index2D.
func (k *KD4) Delete(m Motion2D) error { return k.rot.Delete(m) }

// Len implements Index2D.
func (k *KD4) Len() int { return k.rot.Len() }

// Generations exposes the live generation count (normally ≤ 2).
func (k *KD4) Generations() int { return k.rot.Generations() }

// Query implements Index2D.
func (k *KD4) Query(q MOR2Query, emit func(dual.OID)) error {
	for _, g := range k.rot.Live() {
		if err := g.Query(q, emit); err != nil {
			return err
		}
	}
	return nil
}

// kd4Gen holds four quadrant trees (sign of vx × sign of vy).
type kd4Gen struct {
	cfg   KD4Config
	tref  float64
	quads [4]*kdnd.Tree // index = (vx>0 ? 0 : 1) | (vy>0 ? 0 : 2)
	size  int
}

func quadrant(vx, vy float64) int {
	q := 0
	if vx < 0 {
		q |= 1
	}
	if vy < 0 {
		q |= 2
	}
	return q
}

func newKD4Gen(store pager.Store, cfg KD4Config, tref float64) (*kd4Gen, error) {
	t := cfg.Terrain
	p := t.TPeriod()
	const eps = 1e-3
	// Per-axis intercept ranges mirror the 1-dimensional analysis: for a
	// positive component a ∈ [−VMax·p, extent]; for a negative one
	// a ∈ [0, extent + VMax·p].
	vRange := func(negV bool) (lo, hi float64) {
		if negV {
			return -t.VMax - eps, -t.VMin + eps
		}
		return t.VMin - eps, t.VMax + eps
	}
	aRange := func(negV bool, extent float64) (lo, hi float64) {
		if negV {
			return -eps, extent + t.VMax*p + eps
		}
		return -t.VMax*p - eps, extent + eps
	}
	g := &kd4Gen{cfg: cfg, tref: tref}
	for q := 0; q < 4; q++ {
		negX := q&1 != 0
		negY := q&2 != 0
		vxLo, vxHi := vRange(negX)
		axLo, axHi := aRange(negX, t.XMax)
		vyLo, vyHi := vRange(negY)
		ayLo, ayHi := aRange(negY, t.YMax)
		tree, err := kdnd.New(store, kdnd.Config{
			Dims: 4,
			World: kdnd.Box{
				Lo: []float64{vxLo, axLo, vyLo, ayLo},
				Hi: []float64{vxHi, axHi, vyHi, ayHi},
			},
		})
		if err != nil {
			return nil, err
		}
		g.quads[q] = tree
	}
	return g, nil
}

// dualPoint maps the motion to (vx, ax, vy, ay) relative to tref.
func (g *kd4Gen) dualPoint(m Motion2D) []float64 {
	x, y := m.At(g.tref)
	return []float64{m.VX, x, m.VY, y}
}

func (g *kd4Gen) Len() int { return g.size }

func (g *kd4Gen) Insert(m Motion2D) error {
	tree := g.quads[quadrant(m.VX, m.VY)]
	if err := tree.Insert(kdnd.Point{Coords: g.dualPoint(m), Val: uint64(m.OID)}); err != nil {
		return err
	}
	g.size++
	return nil
}

func (g *kd4Gen) Delete(m Motion2D) error {
	tree := g.quads[quadrant(m.VX, m.VY)]
	found, err := tree.Delete(kdnd.Point{Coords: g.dualPoint(m), Val: uint64(m.OID)})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("twod: motion of object %d not found in kd4 index", m.OID)
	}
	g.size--
	return nil
}

// constraints4 builds the ℝ⁴ simplex: the Proposition 1 wedge of the x
// projection on dims (0,1) and of the y projection on dims (2,3), with
// times relative to tref.
func constraints4(q MOR2Query, tref float64, tr Terrain2D, negX, negY bool) []kdnd.Constraint {
	t1 := q.T1 - tref
	t2 := q.T2 - tref
	var cs []kdnd.Constraint
	add := func(vDim, aDim int, Y1, Y2 float64, neg bool) {
		coef := func(v, a float64) []float64 {
			c := make([]float64, 4)
			c[vDim] = v
			c[aDim] = a
			return c
		}
		if !neg {
			cs = append(cs,
				kdnd.Constraint{Coef: coef(-1, 0), C: -tr.VMin}, // v >= vmin
				kdnd.Constraint{Coef: coef(1, 0), C: tr.VMax},   // v <= vmax
				kdnd.Constraint{Coef: coef(-t2, -1), C: -Y1},    // a + t2 v >= Y1
				kdnd.Constraint{Coef: coef(t1, 1), C: Y2},       // a + t1 v <= Y2
			)
		} else {
			cs = append(cs,
				kdnd.Constraint{Coef: coef(1, 0), C: -tr.VMin},
				kdnd.Constraint{Coef: coef(-1, 0), C: tr.VMax},
				kdnd.Constraint{Coef: coef(-t1, -1), C: -Y1},
				kdnd.Constraint{Coef: coef(t2, 1), C: Y2},
			)
		}
	}
	add(0, 1, q.X1, q.X2, negX)
	add(2, 3, q.Y1, q.Y2, negY)
	return cs
}

// quadScan searches one velocity quadrant's tree with the ℝ⁴ simplex and
// filters candidates with the exact 2-dimensional predicate.
func (g *kd4Gen) quadScan(quad int, q MOR2Query, emit func(dual.OID)) error {
	negX := quad&1 != 0
	negY := quad&2 != 0
	cs := constraints4(q, g.tref, g.cfg.Terrain, negX, negY)
	return g.quads[quad].SearchConstraints(cs, func(p kdnd.Point) bool {
		// The conjunction of per-axis wedges over-approximates (the
		// axis conditions may hold at different instants): filter with
		// the exact 2-dimensional predicate reconstructed from the
		// dual point.
		m := Motion2D{
			OID: dual.OID(p.Val),
			X0:  p.Coords[1], Y0: p.Coords[3],
			T0: g.tref,
			VX: p.Coords[0], VY: p.Coords[2],
		}
		if m.Matches(q) {
			emit(m.OID)
		}
		return true
	})
}

func (g *kd4Gen) Query(q MOR2Query, emit func(dual.OID)) error {
	for quad := 0; quad < 4; quad++ {
		if err := g.quadScan(quad, q, emit); err != nil {
			return err
		}
	}
	return nil
}

// subqueries returns the four independent quadrant scans; an object lives
// in exactly one quadrant tree, so the union of emissions is
// duplicate-free and equals Query's answer.
func (g *kd4Gen) subqueries(q MOR2Query) []func(emit func(dual.OID)) error {
	subs := make([]func(emit func(dual.OID)) error, 0, 4)
	for quad := 0; quad < 4; quad++ {
		quad := quad
		subs = append(subs, func(emit func(dual.OID)) error {
			return g.quadScan(quad, q, emit)
		})
	}
	return subs
}

func (g *kd4Gen) Destroy() error {
	for _, t := range g.quads {
		if err := t.Destroy(); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Decomposed: two 1-dimensional Dual-B+ indexes intersected
// ---------------------------------------------------------------------------

// DecomposedConfig configures the per-axis decomposition method.
type DecomposedConfig struct {
	Terrain Terrain2D
	// C is the observation-index count per axis (see core.DualBPlusConfig).
	C int
	// Codec selects the on-page record precision of the axis indexes.
	Codec bptree.Codec
}

// Decomposed answers the two-dimensional MOR query by running one
// 1-dimensional MOR query per axis and intersecting the answers by object
// id, then filtering exactly against the stored motion.
type Decomposed struct {
	cfg     DecomposedConfig
	xIndex  *core.DualBPlus
	yIndex  *core.DualBPlus
	motions map[dual.OID]Motion2D
}

// NewDecomposed creates the index; both axis indexes share the store.
func NewDecomposed(store pager.Store, cfg DecomposedConfig) (*Decomposed, error) {
	t := cfg.Terrain
	if t.XMax <= 0 || t.YMax <= 0 || t.VMin <= 0 || t.VMax < t.VMin {
		return nil, fmt.Errorf("twod: invalid terrain %+v", t)
	}
	xi, err := core.NewDualBPlus(store, core.DualBPlusConfig{Terrain: t.xTerrain(), C: cfg.C, Codec: cfg.Codec})
	if err != nil {
		return nil, err
	}
	yi, err := core.NewDualBPlus(store, core.DualBPlusConfig{Terrain: t.yTerrain(), C: cfg.C, Codec: cfg.Codec})
	if err != nil {
		return nil, err
	}
	return &Decomposed{cfg: cfg, xIndex: xi, yIndex: yi, motions: make(map[dual.OID]Motion2D)}, nil
}

// Insert implements Index2D.
func (d *Decomposed) Insert(m Motion2D) error {
	if err := d.cfg.Terrain.validate(m); err != nil {
		return err
	}
	if _, dup := d.motions[m.OID]; dup {
		return fmt.Errorf("twod: object %d already indexed", m.OID)
	}
	if err := d.xIndex.Insert(m.XMotion()); err != nil {
		return err
	}
	if err := d.yIndex.Insert(m.YMotion()); err != nil {
		return err
	}
	d.motions[m.OID] = m
	return nil
}

// Delete implements Index2D.
func (d *Decomposed) Delete(m Motion2D) error {
	if err := d.xIndex.Delete(m.XMotion()); err != nil {
		return err
	}
	if err := d.yIndex.Delete(m.YMotion()); err != nil {
		return err
	}
	delete(d.motions, m.OID)
	return nil
}

// Len implements Index2D.
func (d *Decomposed) Len() int { return len(d.motions) }

// Query implements Index2D: intersect the two per-axis answers, then apply
// the exact 2-dimensional predicate.
func (d *Decomposed) Query(q MOR2Query, emit func(dual.OID)) error {
	xq := dual.MORQuery{Y1: q.X1, Y2: q.X2, T1: q.T1, T2: q.T2}
	yq := dual.MORQuery{Y1: q.Y1, Y2: q.Y2, T1: q.T1, T2: q.T2}
	xHits := make(map[dual.OID]struct{})
	if err := d.xIndex.Query(xq, func(id dual.OID) { xHits[id] = struct{}{} }); err != nil {
		return err
	}
	return d.yIndex.Query(yq, func(id dual.OID) {
		if _, ok := xHits[id]; !ok {
			return
		}
		if m, ok := d.motions[id]; ok && m.Matches(q) {
			emit(id)
		}
	})
}

// Interface compliance checks.
var (
	_ Index2D = (*KD4)(nil)
	_ Index2D = (*Decomposed)(nil)
)
