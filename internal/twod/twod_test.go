package twod

import (
	"math"
	"math/rand"
	"testing"

	"mobidx/internal/bptree"
	"mobidx/internal/dual"
	"mobidx/internal/pager"
)

var terr = Terrain2D{XMax: 100, YMax: 100, VMin: 0.5, VMax: 2}

type sim2 struct {
	rng  *rand.Rand
	now  float64
	cur  map[dual.OID]Motion2D
	next dual.OID
}

func newSim2(seed int64) *sim2 {
	return &sim2{rng: rand.New(rand.NewSource(seed)), cur: make(map[dual.OID]Motion2D)}
}

func (s *sim2) randComp() float64 {
	v := terr.VMin + s.rng.Float64()*(terr.VMax-terr.VMin)
	if s.rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

func (s *sim2) spawn(ix Index2D, t *testing.T) {
	t.Helper()
	m := Motion2D{
		OID: s.next,
		X0:  s.rng.Float64() * terr.XMax,
		Y0:  s.rng.Float64() * terr.YMax,
		T0:  s.now,
		VX:  s.randComp(),
		VY:  s.randComp(),
	}
	s.next++
	if err := ix.Insert(m); err != nil {
		t.Fatalf("insert: %v", err)
	}
	s.cur[m.OID] = m
}

// tick reflects components at borders, as the model's forced updates.
func (s *sim2) tick(ix Index2D, dt float64, t *testing.T) {
	t.Helper()
	s.now += dt
	for id, m := range s.cur {
		cross := func(p0, v, max float64) float64 {
			if v > 0 {
				return m.T0 + (max-p0)/v
			}
			return m.T0 + (0-p0)/v
		}
		tx := cross(m.X0, m.VX, terr.XMax)
		ty := cross(m.Y0, m.VY, terr.YMax)
		tc := math.Min(tx, ty)
		if tc <= s.now {
			if err := ix.Delete(m); err != nil {
				t.Fatalf("reflect delete: %v", err)
			}
			x, y := m.At(tc)
			nm := Motion2D{OID: id, X0: clamp(x, terr.XMax), Y0: clamp(y, terr.YMax), T0: tc, VX: m.VX, VY: m.VY}
			if tx <= ty {
				nm.VX = -m.VX
			}
			if ty <= tx {
				nm.VY = -m.VY
			}
			if err := ix.Insert(nm); err != nil {
				t.Fatalf("reflect insert: %v", err)
			}
			s.cur[id] = nm
		}
	}
}

func clamp(v, max float64) float64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

func (s *sim2) churn(ix Index2D, k int, t *testing.T) {
	t.Helper()
	ids := make([]dual.OID, 0, len(s.cur))
	for id := range s.cur {
		ids = append(ids, id)
	}
	for i := 0; i < k && len(ids) > 0; i++ {
		id := ids[s.rng.Intn(len(ids))]
		old := s.cur[id]
		if err := ix.Delete(old); err != nil {
			t.Fatalf("churn delete: %v", err)
		}
		x, y := old.At(s.now)
		nm := Motion2D{OID: id, X0: clamp(x, terr.XMax), Y0: clamp(y, terr.YMax), T0: s.now, VX: s.randComp(), VY: s.randComp()}
		if err := ix.Insert(nm); err != nil {
			t.Fatalf("churn insert: %v", err)
		}
		s.cur[id] = nm
	}
}

func (s *sim2) randQuery(maxW, maxT float64) MOR2Query {
	x1 := s.rng.Float64() * terr.XMax
	y1 := s.rng.Float64() * terr.YMax
	t1 := s.now + s.rng.Float64()*15
	return MOR2Query{
		X1: x1, X2: math.Min(x1+s.rng.Float64()*maxW, terr.XMax),
		Y1: y1, Y2: math.Min(y1+s.rng.Float64()*maxW, terr.YMax),
		T1: t1, T2: t1 + s.rng.Float64()*maxT,
	}
}

func near2(m Motion2D, q MOR2Query, tol float64) bool {
	big := MOR2Query{X1: q.X1 - tol, X2: q.X2 + tol, Y1: q.Y1 - tol, Y2: q.Y2 + tol, T1: q.T1 - tol, T2: q.T2 + tol}
	small := MOR2Query{X1: q.X1 + tol, X2: q.X2 - tol, Y1: q.Y1 + tol, Y2: q.Y2 - tol, T1: q.T1 + tol, T2: q.T2 - tol}
	if small.X1 > small.X2 || small.Y1 > small.Y2 || small.T1 > small.T2 {
		return m.Matches(big)
	}
	return m.Matches(big) && !m.Matches(small)
}

func check2(t *testing.T, ix Index2D, s *sim2, q MOR2Query, tol float64) {
	t.Helper()
	want := map[dual.OID]bool{}
	for id, m := range s.cur {
		if m.Matches(q) {
			want[id] = true
		}
	}
	got := map[dual.OID]bool{}
	dups := 0
	if err := ix.Query(q, func(id dual.OID) {
		if got[id] {
			dups++
		}
		got[id] = true
	}); err != nil {
		t.Fatalf("query: %v", err)
	}
	if dups > 0 {
		t.Fatalf("%d duplicate emissions", dups)
	}
	for id := range want {
		if !got[id] && !(tol > 0 && near2(s.cur[id], q, tol)) {
			t.Fatalf("missing %d (%+v) for %+v", id, s.cur[id], q)
		}
	}
	for id := range got {
		if !want[id] && !(tol > 0 && near2(s.cur[id], q, tol)) {
			t.Fatalf("spurious %d (%+v) for %+v", id, s.cur[id], q)
		}
	}
}

func runDifferential2(t *testing.T, mk func(st pager.Store) Index2D, tol float64, seed int64) {
	t.Helper()
	st := pager.NewMemStore(1024)
	ix := mk(st)
	s := newSim2(seed)
	for i := 0; i < 300; i++ {
		s.spawn(ix, t)
	}
	for step := 0; step < 40; step++ {
		s.tick(ix, 4, t)
		s.churn(ix, 10, t)
		if step%5 == 0 {
			check2(t, ix, s, s.randQuery(15, 10), tol)
			check2(t, ix, s, s.randQuery(60, 25), tol)
			q := s.randQuery(30, 0) // instant query
			check2(t, ix, s, q, tol)
		}
	}
	if ix.Len() != len(s.cur) {
		t.Fatalf("Len = %d want %d", ix.Len(), len(s.cur))
	}
}

func TestMatches2Exact(t *testing.T) {
	m := Motion2D{OID: 1, X0: 0, Y0: 100, T0: 0, VX: 1, VY: -1}
	// At t=50: (50, 50).
	if !m.Matches(MOR2Query{X1: 45, X2: 55, Y1: 45, Y2: 55, T1: 50, T2: 50}) {
		t.Fatal("exact hit missed")
	}
	// x-range holds at t≈10, y-range at t≈80: no common instant.
	if m.Matches(MOR2Query{X1: 8, X2: 12, Y1: 18, Y2: 22, T1: 0, T2: 100}) {
		t.Fatal("accepted object whose axis conditions hold at different times")
	}
}

func TestKD4Differential(t *testing.T) {
	mk := func(st pager.Store) Index2D {
		ix, err := NewKD4(st, KD4Config{Terrain: terr})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential2(t, mk, 0.02, 71)
}

func TestDecomposedDifferential(t *testing.T) {
	mk := func(st pager.Store) Index2D {
		ix, err := NewDecomposed(st, DecomposedConfig{Terrain: terr, C: 4, Codec: bptree.Wide})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential2(t, mk, 0, 73)
}

func TestKD4Rotation(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, err := NewKD4(st, KD4Config{Terrain: terr})
	if err != nil {
		t.Fatal(err)
	}
	s := newSim2(79)
	for i := 0; i < 150; i++ {
		s.spawn(ix, t)
	}
	// TPeriod = 100/0.5 = 200; run 3+ periods.
	for step := 0; step < 350; step++ {
		s.tick(ix, 2, t)
		s.churn(ix, 4, t)
		if g := ix.Generations(); g > 2 {
			t.Fatalf("step %d: %d generations", step, g)
		}
	}
	check2(t, ix, s, s.randQuery(40, 15), 0.02)
}

func TestValidate2D(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, _ := NewKD4(st, KD4Config{Terrain: terr})
	bad := []Motion2D{
		{OID: 1, X0: 50, Y0: 50, T0: 0, VX: 0.1, VY: 1}, // vx too slow
		{OID: 1, X0: 50, Y0: 50, T0: 0, VX: 1, VY: 5},   // vy too fast
		{OID: 1, X0: 500, Y0: 50, T0: 0, VX: 1, VY: 1},  // outside
		{OID: 1, X0: 50, Y0: -50, T0: 0, VX: 1, VY: 1},  // outside
	}
	for i, m := range bad {
		if err := ix.Insert(m); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestDecomposedDuplicateInsert(t *testing.T) {
	st := pager.NewMemStore(1024)
	ix, _ := NewDecomposed(st, DecomposedConfig{Terrain: terr, C: 4})
	m := Motion2D{OID: 9, X0: 10, Y0: 10, T0: 0, VX: 1, VY: 1}
	if err := ix.Insert(m); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(m); err == nil {
		t.Fatal("duplicate insert accepted")
	}
}

func TestPartTree4Differential(t *testing.T) {
	mk := func(st pager.Store) Index2D {
		ix, err := NewPartTree4(st, PartTree4Config{Terrain: terr})
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	runDifferential2(t, mk, 0.02, 83)
}
