// Geofence workload: the standing-query scenario. A handful of hotspot
// locations (stadium, airport, depot) attract commuter objects that
// shuttle between their homes and the hotspots, while geofences —
// standing MOR queries watched through sliding windows — cluster around
// the hotspots. Commuter flows therefore cross fence boundaries
// constantly, which is exactly the enter/leave churn the subscription
// engine's differential suite and benchmark need. All randomness flows
// from the seed; the trace is deterministic.

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"mobidx/internal/dual"
)

// Geofence is one standing query: report objects inside [Y1, Y2] at some
// instant of the sliding window [now, now+Window].
type Geofence struct {
	Y1, Y2 float64
	Window float64
}

// GeofenceParams describes a geofence scenario.
type GeofenceParams struct {
	Seed            int64
	Terrain         dual.Terrain
	Hotspots        int       // attraction centers
	Fences          int       // standing queries, clustered on hotspots
	Commuters       int       // mobile objects
	RetargetPerTick int       // spontaneous destination changes per tick
	Windows         []float64 // fence window lengths, drawn uniformly
}

// DefaultGeofenceParams returns a scenario on the paper's terrain with
// the given population sizes.
func DefaultGeofenceParams(commuters, fences int) GeofenceParams {
	retarget := commuters / 20
	if retarget < 1 {
		retarget = 1
	}
	return GeofenceParams{
		Seed:            1999,
		Terrain:         dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66},
		Hotspots:        4,
		Fences:          fences,
		Commuters:       commuters,
		RetargetPerTick: retarget,
		Windows:         []float64{5, 20, 60},
	}
}

// GeofenceSim drives the scenario. Like Simulator, every index operation
// is reported through a callback as a delete+insert pair.
type GeofenceSim struct {
	p        GeofenceParams
	rng      *rand.Rand
	now      float64
	cur      []dual.Motion // by OID
	home     []float64     // each commuter's home position
	target   []float64     // each commuter's current destination
	hotspots []float64
	fences   []Geofence
}

// NewGeofenceSim validates the parameters and lays out hotspots and
// fences; call Bootstrap before Tick.
func NewGeofenceSim(p GeofenceParams) (*GeofenceSim, error) {
	if p.Commuters <= 0 || p.Fences <= 0 || p.Hotspots <= 0 {
		return nil, fmt.Errorf("workload: geofence scenario needs commuters, fences and hotspots, got %d/%d/%d",
			p.Commuters, p.Fences, p.Hotspots)
	}
	if p.Terrain.YMax <= 0 || p.Terrain.VMin <= 0 || p.Terrain.VMax < p.Terrain.VMin {
		return nil, fmt.Errorf("workload: invalid terrain %+v", p.Terrain)
	}
	if len(p.Windows) == 0 {
		return nil, fmt.Errorf("workload: geofence scenario needs at least one window length")
	}
	for _, w := range p.Windows {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: invalid window length %v", w)
		}
	}
	g := &GeofenceSim{p: p, rng: rand.New(rand.NewSource(p.Seed))}
	ymax := p.Terrain.YMax
	g.hotspots = make([]float64, p.Hotspots)
	for i := range g.hotspots {
		// Keep hotspots off the borders so fences fit around them.
		g.hotspots[i] = ymax * (0.1 + 0.8*g.rng.Float64())
	}
	g.fences = make([]Geofence, p.Fences)
	for i := range g.fences {
		h := g.hotspots[g.rng.Intn(len(g.hotspots))]
		center := h + g.rng.NormFloat64()*ymax/50
		width := ymax * (0.005 + 0.025*g.rng.Float64())
		y1 := clamp(center-width/2, 0, ymax)
		y2 := clamp(center+width/2, 0, ymax)
		g.fences[i] = Geofence{
			Y1:     y1,
			Y2:     y2,
			Window: p.Windows[g.rng.Intn(len(p.Windows))],
		}
	}
	return g, nil
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Fences returns the standing queries of the scenario.
func (g *GeofenceSim) Fences() []Geofence { return g.fences }

// Hotspots returns the attraction centers.
func (g *GeofenceSim) Hotspots() []float64 { return g.hotspots }

// Now returns the current simulation time.
func (g *GeofenceSim) Now() float64 { return g.now }

// Motions returns the current motion of every commuter (indexed by OID).
func (g *GeofenceSim) Motions() []dual.Motion { return g.cur }

// pickTarget chooses a commuter's next destination: usually a hotspot,
// sometimes home — the tidal flow.
func (g *GeofenceSim) pickTarget(id int) float64 {
	if g.rng.Float64() < 0.35 {
		return g.home[id]
	}
	return g.hotspots[g.rng.Intn(len(g.hotspots))]
}

// motionToward builds the motion of commuter id standing at y at time t,
// heading for its current target. Commuters never stop: the paper's
// model (and core's motion validation) keeps every speed in
// [VMin, VMax], so "parked at the hotspot" is a slow shuttle around it.
func (g *GeofenceSim) motionToward(id int, y, t float64) dual.Motion {
	tr := g.p.Terrain
	v := tr.VMin + g.rng.Float64()*(tr.VMax-tr.VMin)
	if g.target[id]-y < 0 {
		v = -v
	}
	return dual.Motion{OID: dual.OID(id), Y0: y, T0: t, V: v}
}

// Bootstrap creates the commuters at their homes at time 0, reporting
// one Insert per object.
func (g *GeofenceSim) Bootstrap(apply func(Op) error) error {
	g.cur = make([]dual.Motion, g.p.Commuters)
	g.home = make([]float64, g.p.Commuters)
	g.target = make([]float64, g.p.Commuters)
	for i := range g.cur {
		g.home[i] = g.rng.Float64() * g.p.Terrain.YMax
		g.target[i] = g.pickTarget(i)
		m := g.motionToward(i, g.home[i], 0)
		g.cur[i] = m
		if err := apply(Op{Insert: true, Motion: m}); err != nil {
			return fmt.Errorf("workload: geofence bootstrap insert %d: %w", i, err)
		}
	}
	return nil
}

// update replaces commuter id's motion, reporting the delete+insert pair.
func (g *GeofenceSim) update(id int, nm dual.Motion, apply func(Op) error) error {
	if err := apply(Op{Insert: false, Motion: g.cur[id]}); err != nil {
		return fmt.Errorf("workload: geofence delete for commuter %d: %w", id, err)
	}
	if err := apply(Op{Insert: true, Motion: nm}); err != nil {
		return fmt.Errorf("workload: geofence insert for commuter %d: %w", id, err)
	}
	g.cur[id] = nm
	return nil
}

// Tick advances one time instant: commuters that reached their target
// (or a border) turn around or park, and RetargetPerTick commuters pick
// new destinations mid-flight.
func (g *GeofenceSim) Tick(apply func(Op) error) error {
	g.now++
	ymax := g.p.Terrain.YMax
	for id := range g.cur {
		m := g.cur[id]
		y := m.At(g.now)
		arrived := (m.V > 0 && y >= g.target[id]) || (m.V < 0 && y <= g.target[id])
		if !arrived && y > 0 && y < ymax {
			continue
		}
		g.target[id] = g.pickTarget(id)
		if err := g.update(id, g.motionToward(id, clamp(y, 0, ymax), g.now), apply); err != nil {
			return err
		}
	}
	for k := 0; k < g.p.RetargetPerTick; k++ {
		id := g.rng.Intn(g.p.Commuters)
		y := clamp(g.cur[id].At(g.now), 0, ymax)
		g.target[id] = g.pickTarget(id)
		if err := g.update(id, g.motionToward(id, y, g.now), apply); err != nil {
			return err
		}
	}
	return nil
}

// BruteForce answers fence f one-shot against the simulator's own state
// at the current time — the ground truth for the differential suite.
func (g *GeofenceSim) BruteForce(f Geofence) []dual.OID {
	q := dual.MORQuery{Y1: f.Y1, Y2: f.Y2, T1: g.now, T2: g.now + f.Window}
	out := make([]dual.OID, 0)
	for _, m := range g.cur {
		if m.Matches(q) {
			out = append(out, m.OID)
		}
	}
	return out
}
