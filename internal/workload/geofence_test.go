package workload

import (
	"math"
	"reflect"
	"testing"

	"mobidx/internal/dual"
)

func geofenceTrace(t *testing.T, p GeofenceParams, ticks int) (*GeofenceSim, int) {
	t.Helper()
	g, err := NewGeofenceSim(p)
	if err != nil {
		t.Fatalf("NewGeofenceSim: %v", err)
	}
	ops := 0
	count := func(Op) error { ops++; return nil }
	if err := g.Bootstrap(count); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	for i := 0; i < ticks; i++ {
		if err := g.Tick(count); err != nil {
			t.Fatalf("Tick %d: %v", i, err)
		}
	}
	return g, ops
}

func TestGeofenceDeterminism(t *testing.T) {
	p := DefaultGeofenceParams(200, 40)
	a, aops := geofenceTrace(t, p, 50)
	b, bops := geofenceTrace(t, p, 50)
	if aops != bops {
		t.Fatalf("op counts differ: %d vs %d", aops, bops)
	}
	if !reflect.DeepEqual(a.Fences(), b.Fences()) {
		t.Fatalf("fence layouts differ")
	}
	if !reflect.DeepEqual(a.Motions(), b.Motions()) {
		t.Fatalf("motion states differ after identical traces")
	}
}

func TestGeofenceLayout(t *testing.T) {
	p := DefaultGeofenceParams(100, 200)
	g, _ := geofenceTrace(t, p, 0)
	windows := make(map[uint64]bool)
	for _, w := range p.Windows {
		windows[math.Float64bits(w)] = true
	}
	near := 0
	for _, f := range g.Fences() {
		if f.Y1 < 0 || f.Y2 > p.Terrain.YMax || f.Y2 < f.Y1 {
			t.Fatalf("fence %+v outside terrain", f)
		}
		if !windows[math.Float64bits(f.Window)] {
			t.Fatalf("fence window %v not drawn from %v", f.Window, p.Windows)
		}
		center := (f.Y1 + f.Y2) / 2
		for _, h := range g.Hotspots() {
			if math.Abs(center-h) < p.Terrain.YMax/10 {
				near++
				break
			}
		}
	}
	if near < len(g.Fences())*6/10 {
		t.Fatalf("only %d/%d fences near a hotspot; wanted clustering", near, len(g.Fences()))
	}
}

func TestGeofenceCommuterMotion(t *testing.T) {
	p := DefaultGeofenceParams(300, 30)
	g, ops := geofenceTrace(t, p, 100)
	if ops <= p.Commuters {
		t.Fatalf("no updates beyond bootstrap (%d ops)", ops)
	}
	tr := p.Terrain
	for _, m := range g.Motions() {
		v := math.Abs(m.V)
		if v > tr.VMax+1e-12 {
			t.Fatalf("commuter %d too fast: %v", m.OID, m.V)
		}
		if v > 1e-12 && v < tr.VMin-1e-12 {
			t.Fatalf("commuter %d moving slower than VMin: %v", m.OID, m.V)
		}
		y := m.At(g.Now())
		if y < -tr.YMax/4 || y > tr.YMax*1.25 {
			t.Fatalf("commuter %d far outside the terrain: y=%v", m.OID, y)
		}
	}
}

func TestGeofenceCrossingActivity(t *testing.T) {
	p := DefaultGeofenceParams(400, 60)
	g, err := NewGeofenceSim(p)
	if err != nil {
		t.Fatalf("NewGeofenceSim: %v", err)
	}
	nop := func(Op) error { return nil }
	if err := g.Bootstrap(nop); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	prev := make(map[int]map[dual.OID]bool)
	transitions := 0
	for tick := 0; tick < 80; tick++ {
		if err := g.Tick(nop); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		for i, f := range g.Fences() {
			cur := make(map[dual.OID]bool)
			for _, oid := range g.BruteForce(f) {
				cur[oid] = true
			}
			for oid := range cur {
				if !prev[i][oid] {
					transitions++
				}
			}
			for oid := range prev[i] {
				if !cur[oid] {
					transitions++
				}
			}
			prev[i] = cur
		}
	}
	if transitions < 100 {
		t.Fatalf("only %d fence transitions in 80 ticks; commuter flows are not crossing fences", transitions)
	}
}
