// Package workload generates the experimental scenario of §5 of the paper:
//
//	"At time t=0 we generated the initial locations of N mobile objects
//	uniformly distributed on the terrain [0,1000]. ... The speeds were
//	generated uniformly from vmin = 0.16 to vmax = 1.66 and the direction
//	randomly positive or negative. Then objects start moving. When an
//	object reaches a border simply it changes its direction. At each time
//	instant we choose 200 objects randomly and we randomly change their
//	speed and/or direction. ... At each such time instant we execute 200
//	random queries, where the length of the y-range is chosen uniformly
//	between 0 and YQMAX and the length of the time range between 0 and TW."
//
// Two query mixes are defined: large queries (YQMAX=150, TW=60, average
// cardinality ≈ 10%) and small ones (YQMAX=10, TW=20, ≈ 1%). The scenario
// runs for 2000 time instants. All randomness flows from an explicit seed.
package workload

import (
	"fmt"
	"math/rand"

	"mobidx/internal/dual"
)

// Params describes a §5 scenario.
type Params struct {
	N              int   // number of mobile objects
	Seed           int64 // RNG seed
	Terrain        dual.Terrain
	UpdatesPerTick int // random motion changes per time instant (paper: 200)
	Ticks          int // scenario length in time instants (paper: 2000)
}

// DefaultParams returns the paper's parameters for the given N.
func DefaultParams(n int) Params {
	return Params{
		N:              n,
		Seed:           1999, // the year of PODS '99
		Terrain:        dual.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66},
		UpdatesPerTick: 200,
		Ticks:          2000,
	}
}

// QueryMix describes one of the paper's two query sets.
type QueryMix struct {
	Name    string
	YQMax   float64 // max spatial extent
	TW      float64 // max time-window length
	PerSlot int     // queries per query instant (paper: 200)
}

// LargeQueries is the ≈10%-selectivity mix of Figure 6.
func LargeQueries() QueryMix { return QueryMix{Name: "10%", YQMax: 150, TW: 60, PerSlot: 200} }

// SmallQueries is the ≈1%-selectivity mix of Figure 7.
func SmallQueries() QueryMix { return QueryMix{Name: "1%", YQMax: 10, TW: 20, PerSlot: 200} }

// Op is one index operation produced by the simulator. An update is always
// a Delete of the old motion followed by an Insert of the new one (§3).
type Op struct {
	Insert bool
	Motion dual.Motion
}

// Simulator drives the scenario, reporting every index operation through a
// callback so any access method can be measured against it.
type Simulator struct {
	params Params
	rng    *rand.Rand
	now    float64
	cur    []dual.Motion // by OID
}

// NewSimulator creates a simulator; call Bootstrap before Tick.
func NewSimulator(p Params) (*Simulator, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("workload: N must be positive, got %d", p.N)
	}
	if p.Terrain.YMax <= 0 || p.Terrain.VMin <= 0 || p.Terrain.VMax < p.Terrain.VMin {
		return nil, fmt.Errorf("workload: invalid terrain %+v", p.Terrain)
	}
	return &Simulator{params: p, rng: rand.New(rand.NewSource(p.Seed))}, nil
}

// Now returns the current simulation time.
func (s *Simulator) Now() float64 { return s.now }

// Params returns the scenario parameters.
func (s *Simulator) Params() Params { return s.params }

// Motions returns the current motion of every object (indexed by OID).
func (s *Simulator) Motions() []dual.Motion { return s.cur }

func (s *Simulator) randV() float64 {
	tr := s.params.Terrain
	v := tr.VMin + s.rng.Float64()*(tr.VMax-tr.VMin)
	if s.rng.Intn(2) == 0 {
		v = -v
	}
	return v
}

// Bootstrap creates the N initial objects at time 0, reporting one Insert
// per object.
func (s *Simulator) Bootstrap(apply func(Op) error) error {
	s.cur = make([]dual.Motion, s.params.N)
	for i := range s.cur {
		m := dual.Motion{
			OID: dual.OID(i),
			Y0:  s.rng.Float64() * s.params.Terrain.YMax,
			T0:  0,
			V:   s.randV(),
		}
		s.cur[i] = m
		if err := apply(Op{Insert: true, Motion: m}); err != nil {
			return fmt.Errorf("workload: bootstrap insert %d: %w", i, err)
		}
	}
	return nil
}

// borderCross returns when m reaches a terrain border.
func (s *Simulator) borderCross(m dual.Motion) float64 {
	if m.V > 0 {
		return m.T0 + (s.params.Terrain.YMax-m.Y0)/m.V
	}
	return m.T0 + (0-m.Y0)/m.V
}

// update replaces object id's motion with nm, reporting both operations.
func (s *Simulator) update(id dual.OID, nm dual.Motion, apply func(Op) error) error {
	if err := apply(Op{Insert: false, Motion: s.cur[id]}); err != nil {
		return fmt.Errorf("workload: delete for object %d: %w", id, err)
	}
	if err := apply(Op{Insert: true, Motion: nm}); err != nil {
		return fmt.Errorf("workload: insert for object %d: %w", id, err)
	}
	s.cur[id] = nm
	return nil
}

// Tick advances time by one instant: objects that reached a border reflect
// (an update at the exact crossing time), then UpdatesPerTick random
// objects change speed and/or direction.
func (s *Simulator) Tick(apply func(Op) error) error {
	s.now++
	for id := range s.cur {
		m := s.cur[id]
		tc := s.borderCross(m)
		if tc > s.now {
			continue
		}
		border := 0.0
		if m.V > 0 {
			border = s.params.Terrain.YMax
		}
		nm := dual.Motion{OID: m.OID, Y0: border, T0: tc, V: -m.V}
		if err := s.update(m.OID, nm, apply); err != nil {
			return err
		}
	}
	for k := 0; k < s.params.UpdatesPerTick; k++ {
		id := dual.OID(s.rng.Intn(s.params.N))
		old := s.cur[id]
		y := old.At(s.now)
		if y < 0 {
			y = 0
		}
		if y > s.params.Terrain.YMax {
			y = s.params.Terrain.YMax
		}
		nm := dual.Motion{OID: id, Y0: y, T0: s.now, V: s.randV()}
		if err := s.update(id, nm, apply); err != nil {
			return err
		}
	}
	return nil
}

// Queries draws a batch of random MOR queries at the current time per the
// given mix.
func (s *Simulator) Queries(mix QueryMix) []dual.MORQuery {
	out := make([]dual.MORQuery, mix.PerSlot)
	tr := s.params.Terrain
	for i := range out {
		w := s.rng.Float64() * mix.YQMax
		y1 := s.rng.Float64() * (tr.YMax - w)
		tw := s.rng.Float64() * mix.TW
		t1 := s.now
		out[i] = dual.MORQuery{Y1: y1, Y2: y1 + w, T1: t1, T2: t1 + tw}
	}
	return out
}

// BruteForce answers q against the simulator's own state — the ground
// truth for verification and selectivity measurement.
func (s *Simulator) BruteForce(q dual.MORQuery) []dual.OID {
	var out []dual.OID
	for _, m := range s.cur {
		if m.Matches(q) {
			out = append(out, m.OID)
		}
	}
	return out
}
