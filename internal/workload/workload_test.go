package workload

import (
	"math"
	"testing"

	"mobidx/internal/dual"
)

func TestSimulatorDeterminism(t *testing.T) {
	run := func() []dual.Motion {
		p := DefaultParams(500)
		p.Ticks = 20
		s, err := NewSimulator(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Bootstrap(func(Op) error { return nil }); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if err := s.Tick(func(Op) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		return append([]dual.Motion(nil), s.Motions()...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("motion %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestOpsAreConsistentPairs(t *testing.T) {
	p := DefaultParams(300)
	p.UpdatesPerTick = 50
	s, _ := NewSimulator(p)
	live := map[dual.OID]dual.Motion{}
	apply := func(op Op) error {
		if op.Insert {
			if _, dup := live[op.Motion.OID]; dup {
				t.Fatalf("double insert for %d", op.Motion.OID)
			}
			live[op.Motion.OID] = op.Motion
		} else {
			cur, ok := live[op.Motion.OID]
			if !ok {
				t.Fatalf("delete of absent object %d", op.Motion.OID)
			}
			if cur != op.Motion {
				t.Fatalf("delete motion mismatch for %d", op.Motion.OID)
			}
			delete(live, op.Motion.OID)
		}
		return nil
	}
	if err := s.Bootstrap(apply); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Tick(apply); err != nil {
			t.Fatal(err)
		}
	}
	if len(live) != 300 {
		t.Fatalf("live = %d", len(live))
	}
	// Live set must mirror the simulator state.
	for _, m := range s.Motions() {
		if live[m.OID] != m {
			t.Fatalf("state divergence for %d", m.OID)
		}
	}
}

func TestMotionsStayInBand(t *testing.T) {
	p := DefaultParams(400)
	s, _ := NewSimulator(p)
	check := func(op Op) error {
		if !op.Insert {
			return nil
		}
		m := op.Motion
		sp := math.Abs(m.V)
		if sp < p.Terrain.VMin-1e-12 || sp > p.Terrain.VMax+1e-12 {
			t.Fatalf("speed %v out of band", m.V)
		}
		if m.Y0 < -1e-9 || m.Y0 > p.Terrain.YMax+1e-9 {
			t.Fatalf("position %v out of terrain", m.Y0)
		}
		return nil
	}
	if err := s.Bootstrap(check); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Tick(check); err != nil {
			t.Fatal(err)
		}
	}
	// After many ticks every object's *current position* must be inside
	// the terrain (reflection keeps it there).
	for _, m := range s.Motions() {
		y := m.At(s.Now())
		if y < -1e-6 || y > p.Terrain.YMax+1e-6 {
			t.Fatalf("object %d drifted to %v", m.OID, y)
		}
	}
}

// The two query mixes must hit their advertised selectivities (±
// generous slack): ~10% and ~1%.
func TestQueryMixSelectivity(t *testing.T) {
	p := DefaultParams(20000)
	s, _ := NewSimulator(p)
	_ = s.Bootstrap(func(Op) error { return nil })
	for i := 0; i < 10; i++ {
		_ = s.Tick(func(Op) error { return nil })
	}
	measure := func(mix QueryMix) float64 {
		total := 0
		qs := s.Queries(mix)
		for _, q := range qs {
			total += len(s.BruteForce(q))
		}
		return float64(total) / float64(len(qs)) / float64(p.N)
	}
	large := measure(LargeQueries())
	small := measure(SmallQueries())
	if large < 0.04 || large > 0.20 {
		t.Fatalf("large-mix selectivity %.3f, want ≈0.10", large)
	}
	if small < 0.002 || small > 0.03 {
		t.Fatalf("small-mix selectivity %.4f, want ≈0.01", small)
	}
	if large < 3*small {
		t.Fatalf("mix separation lost: %.3f vs %.4f", large, small)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewSimulator(Params{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	p := DefaultParams(10)
	p.Terrain.VMin = 0
	if _, err := NewSimulator(p); err == nil {
		t.Fatal("vmin=0 accepted")
	}
}
