// Package mobidx indexes mobile objects — points moving on a line or in
// the plane with piecewise-constant velocity — and answers MOR (Moving
// Objects Range) queries about the future: "report every object inside
// spatial range R at some instant in [t1, t2], given current motion
// information". It is a from-scratch implementation of Kollios, Gunopulos
// and Tsotras, "On Indexing Mobile Objects" (PODS 1999).
//
// Everything runs on an explicit external-memory model: indexes read and
// write fixed-size pages through a Store, and performance is measured in
// counted page I/Os, the metric of the paper's evaluation.
//
// # One-dimensional indexes
//
// Four interchangeable implementations of Index1D:
//
//   - NewDualBPlusIndex — the paper's practical contribution (§3.5.2):
//     Hough-Y dual points in c observation B+-trees plus subterrain
//     interval indexes; expected-logarithmic queries, linear space.
//   - NewKDIndex — Hough-X dual points in a paged k-d tree point access
//     method (§3.5.1), answering the Proposition 1 wedge query.
//   - NewPartitionTreeIndex — the (almost) worst-case-optimal simplex
//     range searching structure (§3.4): O(n^(1/2+ε) + k) I/Os.
//   - NewRStarIndex — the traditional baseline (§3.1): trajectory line
//     segments in an R*-tree.
//
// An object's change of motion is always Delete(old) followed by
// Insert(new), exactly as in the paper's update model.
//
// # Bounded-horizon instant queries
//
// kinetic.Structure (via NewKineticStructure / NewStaggeredKinetic)
// answers single-instant MOR1 queries within a bounded future window in
// O(log_B(n+m)) I/Os (§3.6, Theorem 2), where m counts object overtakes.
//
// # Continuous queries
//
// NewSubscriptionEngine maintains standing MOR queries incrementally: the
// queries themselves are indexed in dual space, each motion update probes
// that query index for exactly the affected subscriptions, and kinetic
// certificates cover the boundary crossings between updates. Typed
// enter/leave deltas replace re-execution.
//
// # Two dimensions
//
// New2DKDIndex and New2DDecomposedIndex implement §4.2 (free movement in
// the plane, via the 4-dimensional dual); NewRouteNetwork implements §4.1
// (movement restricted to a network of routes — the "1.5-dimensional"
// problem).
//
// # Quick start
//
//	store := mobidx.NewMemStore(4096)
//	idx, _ := mobidx.NewDualBPlusIndex(store, mobidx.DualBPlusConfig{
//		Terrain: mobidx.Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66},
//		C:       4,
//	})
//	_ = idx.Insert(mobidx.Motion{OID: 1, Y0: 250, T0: 0, V: 1.2})
//	_ = idx.Query(mobidx.Query{Y1: 300, Y2: 400, T1: 50, T2: 80},
//		func(id mobidx.OID) { fmt.Println("will be there:", id) })
package mobidx

import (
	"mobidx/internal/bptree"
	"mobidx/internal/core"
	"mobidx/internal/dual"
	"mobidx/internal/geom"
	"mobidx/internal/kinetic"
	"mobidx/internal/pager"
	"mobidx/internal/route"
	"mobidx/internal/subscribe"
	"mobidx/internal/twod"
)

// Core model types.
type (
	// OID identifies a mobile object.
	OID = dual.OID
	// Motion is one object's linear motion on a line: position Y0 at time
	// T0, velocity V.
	Motion = dual.Motion
	// Query is the one-dimensional MOR query: inside [Y1, Y2] at some
	// instant of [T1, T2].
	Query = dual.MORQuery
	// Terrain bounds the one-dimensional world and its speed band.
	Terrain = dual.Terrain
	// Index1D is the common interface of the one-dimensional indexes.
	Index1D = core.Index1D
)

// Storage types: all indexes speak to pages through a Store.
type (
	// Store is the external-memory page store abstraction.
	Store = pager.Store
	// Stats counts a store's I/O traffic.
	Stats = pager.Stats
	// PageID identifies a page.
	PageID = pager.PageID
)

// NewMemStore returns an in-memory page store (I/Os are counted, not
// performed) with the given page size; 0 selects 4096, the page size of
// the paper's experiments.
func NewMemStore(pageSize int) *pager.MemStore { return pager.NewMemStore(pageSize) }

// NewFileStore returns a page store backed by a file at path.
func NewFileStore(path string, pageSize int) (*pager.FileStore, error) {
	return pager.NewFileStore(path, pageSize)
}

// NewBufferedStore wraps a store with a small LRU pool of the given
// capacity (the paper buffers a root-to-leaf path, 3-4 pages).
func NewBufferedStore(under Store, capacity int) *pager.Buffered {
	return pager.NewBuffered(under, capacity)
}

// OpenFileStore reopens a file store previously written by NewFileStore
// and synced (or cleanly closed), recovering the page allocator, free
// list and user metadata from the checksummed meta page.
func OpenFileStore(path string) (*pager.FileStore, error) {
	return pager.OpenFileStore(path)
}

// Robustness layer: fault injection for testing, checksums against silent
// corruption, bounded retry of transient failures. The recommended
// composition over an untrusted device is, innermost first,
//
//	Buffered(Retry(Checksum(device)))
//
// — checksums detect what the device corrupts, retries absorb what is
// transient, and the buffer caches only pages that verified.
type (
	// FaultConfig configures deterministic fault injection.
	FaultConfig = pager.FaultConfig
	// OpFaults sets the failure schedule for one operation class.
	OpFaults = pager.OpFaults
	// FaultCounters reports operations seen and faults injected.
	FaultCounters = pager.FaultCounters
	// RetryPolicy bounds the retry layer's attempts and backoff.
	RetryPolicy = pager.RetryPolicy
)

// Typed failures of the robustness layer.
var (
	// ErrInjected marks an artificially injected fault.
	ErrInjected = pager.ErrInjected
	// ErrTransient marks a fault that may succeed if retried.
	ErrTransient = pager.ErrTransient
	// ErrPageCorrupt marks a page whose checksum did not verify.
	ErrPageCorrupt = pager.ErrPageCorrupt
)

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return pager.IsTransient(err) }

// NewFaultStore wraps a store with deterministic, seeded fault injection —
// the test harness for everything above it.
func NewFaultStore(under Store, cfg FaultConfig) *pager.FaultStore {
	return pager.NewFaultStore(under, cfg)
}

// NewChecksumStore wraps a store so every page carries a CRC-32C trailer;
// reads of corrupted pages fail with ErrPageCorrupt instead of decoding
// garbage. The wrapped store exposes a page size 4 bytes smaller.
func NewChecksumStore(under Store) (*pager.ChecksumStore, error) {
	return pager.NewChecksumStore(under)
}

// NewRetryStore wraps a store to retry transient faults (per IsTransient)
// up to the policy's budget; permanent errors propagate immediately.
func NewRetryStore(under Store, policy RetryPolicy) *pager.RetryStore {
	return pager.NewRetryStore(under, policy)
}

// Write-ahead logging: OpenWALStore wraps any Store so multi-page updates
// (a B+-tree split, a whole kinetic build) commit atomically. Writes
// inside a Begin/Commit batch reach the append-only log first; crash
// recovery replays committed batches and discards torn tails, so a
// reopened store shows every committed batch and nothing else.
type (
	// WALStore is the write-ahead-logged store.
	WALStore = pager.WALStore
	// WALConfig tunes the WAL (automatic checkpoint threshold).
	WALConfig = pager.WALConfig
	// LogFile is the append-only device a WALStore logs to.
	LogFile = pager.LogFile
	// Batcher is implemented by stores with atomic Begin/Commit/Rollback
	// batches (WALStore, and Buffered when its underlying store batches).
	Batcher = pager.Batcher
)

// Typed failures of the WAL layer.
var (
	// ErrWALCorrupt marks a log whose contents fail validation beyond
	// what clean truncation can repair.
	ErrWALCorrupt = pager.ErrWALCorrupt
	// ErrWALReplay marks a replay that diverged from the base store.
	ErrWALReplay = pager.ErrWALReplay
	// ErrBatchOpen / ErrNoBatch / ErrBatchAborted type batch misuse.
	ErrBatchOpen    = pager.ErrBatchOpen
	ErrNoBatch      = pager.ErrNoBatch
	ErrBatchAborted = pager.ErrBatchAborted
	// ErrStoreFailed marks a store poisoned by a failure after the point
	// of durability; reopen it to recover.
	ErrStoreFailed = pager.ErrStoreFailed
	// ErrDoubleFree and ErrReservedPage type invalid frees.
	ErrDoubleFree   = pager.ErrDoubleFree
	ErrReservedPage = pager.ErrReservedPage
)

// OpenWALStore opens (or recovers) a write-ahead-logged store over base
// and log. On a non-empty log it verifies the header, truncates any torn
// tail, and replays committed batches newer than the checkpoint watermark.
func OpenWALStore(base Store, log LogFile, cfg WALConfig) (*WALStore, error) {
	return pager.OpenWALStore(base, log, cfg)
}

// NewMemLog returns an empty in-memory log device.
func NewMemLog() *pager.MemLog { return pager.NewMemLog() }

// OpenFileLog opens (creating if absent) a file-backed log device.
func OpenFileLog(path string) (*pager.FileLog, error) { return pager.OpenFileLog(path) }

// RunBatch runs fn inside a Begin/Commit batch when the store supports
// batching (rolling back if fn fails), and plainly otherwise. The index
// structures use it around every multi-page mutation.
func RunBatch(s Store, fn func() error) error { return pager.RunBatch(s, fn) }

// Parallel query serving. An Executor fans a query's independent
// subqueries — the Dual-B+ decomposition's per-subterrain scans, the 2D
// methods' per-structure or per-axis scans — across a bounded pool of
// goroutines; results are merged deterministically, so the answer is
// byte-identical at every worker count. See QueryParallel on the Dual-B+
// and 2D indexes. Serving concurrency (many queries against one index,
// interleaved with updates) is the caller's readers-writer latch: queries
// under RLock, updates under Lock.
type (
	// Executor bounds concurrent subquery execution.
	Executor = core.Executor
	// WALSnapshot is a read-only committed view of a WALStore: it serves
	// the latest committed bytes of every page and never observes the
	// staged writes or frees of an open batch. Obtained from
	// WALStore.Snapshot.
	WALSnapshot = pager.WALSnapshot
)

// NewExecutor returns an executor running at most workers subqueries
// concurrently; workers <= 0 selects GOMAXPROCS, workers == 1 runs
// inline with no goroutines.
func NewExecutor(workers int) *Executor { return core.NewExecutor(workers) }

// Record precision of the B+-tree based structures.
const (
	// WideRecords stores 8-byte keys (exact float64 round trips).
	WideRecords = bptree.Wide
	// CompactRecords stores 4-byte keys — the paper's 12-byte records,
	// giving page capacity B=341 at 4096-byte pages.
	CompactRecords = bptree.Compact
)

// One-dimensional index configurations.
type (
	// DualBPlusConfig configures the §3.5.2 approximation method.
	DualBPlusConfig = core.DualBPlusConfig
	// KDConfig configures the §3.5.1 k-d point access method.
	KDConfig = core.KDDualConfig
	// RStarConfig configures the §3.1 R*-tree baseline.
	RStarConfig = core.RStarSegConfig
	// PartitionTreeConfig configures the §3.4 partition tree.
	PartitionTreeConfig = core.PartTreeDualConfig
)

// NewDualBPlusIndex creates the Dual-B+ approximation index (§3.5.2).
func NewDualBPlusIndex(store Store, cfg DualBPlusConfig) (*core.DualBPlus, error) {
	return core.NewDualBPlus(store, cfg)
}

// DualMeta is the persistence metadata of a Dual-B+ index: tree roots,
// heights and sizes per rotation generation, obtained from the index's
// Meta method. It is valid until the next mutating operation and must be
// persisted in the same atomic batch as the mutation that produced it
// (e.g. inside the RunBatch that applied the writes), or crash recovery
// would pair old roots with new pages.
type DualMeta = core.DualMeta

// AttachDualBPlusIndex reattaches a Dual-B+ index previously built in
// store (same page size, terrain, c and codec) from its persisted Meta —
// typically after the store was recovered by OpenWALStore. No logical
// replay happens: every tree root is read and validated, so corrupted or
// stale metadata surfaces here instead of as a wrong answer later.
func AttachDualBPlusIndex(store Store, cfg DualBPlusConfig, m DualMeta) (*core.DualBPlus, error) {
	return core.AttachDualBPlus(store, cfg, m)
}

// NewKDIndex creates the k-d dual index (§3.5.1).
func NewKDIndex(store Store, cfg KDConfig) (*core.KDDual, error) {
	return core.NewKDDual(store, cfg)
}

// NewRStarIndex creates the R*-tree trajectory-segment baseline (§3.1).
func NewRStarIndex(store Store, cfg RStarConfig) (*core.RStarSeg, error) {
	return core.NewRStarSeg(store, cfg)
}

// NewPartitionTreeIndex creates the partition-tree index (§3.4).
func NewPartitionTreeIndex(store Store, cfg PartitionTreeConfig) (*core.PartTreeDual, error) {
	return core.NewPartTreeDual(store, cfg)
}

// SpeedPartitionedConfig configures the slow/moving hybrid index.
type SpeedPartitionedConfig = core.SpeedPartitionedConfig

// NewSpeedPartitionedIndex wraps a moving-object index with the paper's §3
// partitioning: objects slower than the cutoff (v ≈ 0) live in a plain
// B+-tree over positions — for them the problem degenerates to standard
// one-dimensional range searching — while moving objects go to the wrapped
// index.
func NewSpeedPartitionedIndex(store Store, cfg SpeedPartitionedConfig, moving Index1D) (*core.SpeedPartitioned, error) {
	return core.NewSpeedPartitioned(store, cfg, moving)
}

// NewHistory creates an append-only trajectory archive answering
// historical MOR queries ("who was inside R during the past window
// [t1, t2]?") — the §7 extension. Record motion changes with Begin and
// departures with End; query the past with QueryPast.
func NewHistory(store Store, terrain Terrain) (*core.History, error) {
	return core.NewHistory(store, terrain)
}

// Kinetic (bounded-horizon) structures of §3.6.
type (
	// KineticObject is an object snapshot for the kinetic structure.
	KineticObject = kinetic.Object
	// KineticStructure answers instant queries within a fixed window.
	KineticStructure = kinetic.Structure
	// StaggeredKinetic keeps a window of length T always covered.
	StaggeredKinetic = kinetic.Staggered
	// Crossing is one overtake event between two objects.
	Crossing = kinetic.Crossing
)

// NewKineticStructure builds the §3.6 structure answering instant queries
// for tStart ≤ t ≤ tStart+horizon against the given object snapshot.
func NewKineticStructure(store Store, objs []KineticObject, tStart, horizon float64) (*KineticStructure, error) {
	return kinetic.Build(store, objs, tStart, horizon)
}

// NewStaggeredKinetic creates the staggered wrapper that keeps any instant
// within T of "now" covered by rebuilding every T.
func NewStaggeredKinetic(store Store, T float64) (*StaggeredKinetic, error) {
	return kinetic.NewStaggered(store, T)
}

// Crossings enumerates all overtakes among objs within (tStart,
// tStart+horizon) — Lemma 3.
func Crossings(objs []KineticObject, tStart, horizon float64) []Crossing {
	return kinetic.Crossings(objs, tStart, horizon)
}

// Continuous queries: standing MOR queries maintained incrementally. A
// subscription watches a spatial range through a sliding time window; the
// engine indexes the standing queries themselves in dual space, probes
// that query index on each motion update to find exactly the affected
// subscriptions, and schedules kinetic certificates for the future
// instants at which a moving object crosses a standing query's window
// boundary — so membership deltas flow without ever re-running a query.
// Accumulated deltas reconstruct, at every checkpoint, byte-identically
// the answer of a one-shot re-run.
type (
	// SubscriptionEngine maintains standing queries over motion updates.
	SubscriptionEngine = subscribe.Engine
	// SubscribeConfig configures a subscription engine.
	SubscribeConfig = subscribe.Config
	// SubID identifies a subscription within one engine.
	SubID = subscribe.SubID
	// SubDelta is one membership transition of a subscription's answer.
	SubDelta = subscribe.Delta
	// SubKind is the type of a membership delta (SubEnter or SubLeave).
	SubKind = subscribe.Kind
	// SubOp is one motion mutation fed to a subscription engine.
	SubOp = subscribe.Op
	// SubscribeStats counts a subscription engine's work.
	SubscribeStats = subscribe.Stats
)

// Membership delta kinds.
const (
	// SubEnter reports an object joining a subscription's answer set.
	SubEnter = subscribe.Enter
	// SubLeave reports an object dropping out of it.
	SubLeave = subscribe.Leave
)

// Typed failures of the subscription engine.
var (
	// ErrSubEngineClosed reports use of a closed subscription engine.
	ErrSubEngineClosed = subscribe.ErrClosed
	// ErrUnknownSub reports an operation on a nonexistent subscription.
	ErrUnknownSub = subscribe.ErrUnknownSub
)

// NewSubscriptionEngine returns an empty continuous-query engine. Feed
// motion updates with Apply, move time forward with Advance, register
// standing queries with Subscribe or SubscribeStream, and collect typed
// enter/leave deltas with Drain (exact) or the stream channel
// (best-effort).
func NewSubscriptionEngine(cfg SubscribeConfig) (*SubscriptionEngine, error) {
	return subscribe.New(cfg)
}

// Two-dimensional movement (§4.2).
type (
	// Motion2D is one object's linear motion in the plane.
	Motion2D = twod.Motion2D
	// Query2D is the two-dimensional MOR query.
	Query2D = twod.MOR2Query
	// Terrain2D bounds the plane and the per-axis speed band.
	Terrain2D = twod.Terrain2D
	// Index2D is the common interface of the two-dimensional indexes.
	Index2D = twod.Index2D
	// KD4Config configures the 4-dimensional dual k-d index.
	KD4Config = twod.KD4Config
	// DecomposedConfig configures the per-axis decomposition index.
	DecomposedConfig = twod.DecomposedConfig
	// PartTree4Config configures the 4-dimensional partition-tree index.
	PartTree4Config = twod.PartTree4Config
)

// New2DKDIndex creates the 4-dimensional dual k-d index (§4.2).
func New2DKDIndex(store Store, cfg KD4Config) (*twod.KD4, error) {
	return twod.NewKD4(store, cfg)
}

// New2DDecomposedIndex creates the per-axis decomposition index (§4.2).
func New2DDecomposedIndex(store Store, cfg DecomposedConfig) (*twod.Decomposed, error) {
	return twod.NewDecomposed(store, cfg)
}

// New2DPartitionTreeIndex creates the 4-dimensional partition-tree index —
// the §4.2 method with the almost-optimal O(n^(3/4+ε) + k) I/O bound.
func New2DPartitionTreeIndex(store Store, cfg PartTree4Config) (*twod.PartTree4, error) {
	return twod.NewPartTree4(store, cfg)
}

// Route networks: the 1.5-dimensional problem (§4.1).
type (
	// RouteID identifies a route.
	RouteID = route.RouteID
	// Route is a polyline route addressed by arc length.
	Route = route.Route
	// RouteNetworkConfig configures a network.
	RouteNetworkConfig = route.Config
	// RouteNetwork holds routes and their per-route 1D indexes.
	RouteNetwork = route.Network
	// RouteHit is one routed query result.
	RouteHit = route.Hit
)

// NewRouteNetwork creates an empty route network.
func NewRouteNetwork(store Store, cfg RouteNetworkConfig) (*RouteNetwork, error) {
	return route.NewNetwork(store, cfg)
}

// Geometry helpers used by the 1.5-dimensional API.
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Rect is an axis-parallel rectangle.
	Rect = geom.Rect
)

// Interface compliance.
var (
	_ Index1D = (*core.DualBPlus)(nil)
	_ Index2D = (*twod.KD4)(nil)
)
