package mobidx

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

var testTerrain = Terrain{YMax: 1000, VMin: 0.16, VMax: 1.66}

// collect runs a query and returns sorted ids.
func collect(t *testing.T, ix Index1D, q Query) []OID {
	t.Helper()
	var out []OID
	if err := ix.Query(q, func(id OID) { out = append(out, id) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Every public 1D constructor must agree on the same small scenario.
func TestPublicIndexesAgree(t *testing.T) {
	mks := map[string]func() Index1D{
		"dualbp": func() Index1D {
			ix, err := NewDualBPlusIndex(NewMemStore(0), DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: WideRecords})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		},
		"kd": func() Index1D {
			ix, err := NewKDIndex(NewMemStore(0), KDConfig{Terrain: testTerrain})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		},
		"rstar": func() Index1D {
			ix, err := NewRStarIndex(NewMemStore(0), RStarConfig{Terrain: testTerrain})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		},
		"parttree": func() Index1D {
			ix, err := NewPartitionTreeIndex(NewMemStore(0), PartitionTreeConfig{Terrain: testTerrain})
			if err != nil {
				t.Fatal(err)
			}
			return ix
		},
	}
	rng := rand.New(rand.NewSource(1))
	var motions []Motion
	for i := 0; i < 500; i++ {
		v := testTerrain.VMin + rng.Float64()*(testTerrain.VMax-testTerrain.VMin)
		if rng.Intn(2) == 0 {
			v = -v
		}
		motions = append(motions, Motion{OID: OID(i), Y0: rng.Float64() * 1000, T0: 0, V: v})
	}
	queries := make([]Query, 25)
	for i := range queries {
		y1 := rng.Float64() * 900
		t1 := rng.Float64() * 50
		queries[i] = Query{Y1: y1, Y2: y1 + rng.Float64()*120, T1: t1, T2: t1 + rng.Float64()*60}
	}

	answers := map[string][][]OID{}
	for name, mk := range mks {
		ix := mk()
		for _, m := range motions {
			if err := ix.Insert(m); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		var res [][]OID
		for _, q := range queries {
			res = append(res, collect(t, ix, q))
		}
		answers[name] = res
	}
	// The Wide-codec dualbp answer is the float64-exact reference; the
	// float32-backed methods may differ only at boundaries, so compare
	// cardinalities within a tiny slack and flag real divergence.
	ref := answers["dualbp"]
	for name, res := range answers {
		for i := range queries {
			a, b := ref[i], res[i]
			diff := symmetricDiff(a, b)
			if diff > 1+len(a)/100 {
				t.Errorf("%s query %d: answer differs from reference by %d (|ref|=%d, |got|=%d)",
					name, i, diff, len(a), len(b))
			}
		}
	}
}

func symmetricDiff(a, b []OID) int {
	in := map[OID]int{}
	for _, x := range a {
		in[x]++
	}
	for _, x := range b {
		in[x]--
	}
	d := 0
	for _, v := range in {
		if v != 0 {
			d++
		}
	}
	return d
}

// The whole stack must work against a real file-backed store.
func TestFileBackedEndToEnd(t *testing.T) {
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "mobidx.db"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	ix, err := NewDualBPlusIndex(fs, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: CompactRecords})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var motions []Motion
	for i := 0; i < 2000; i++ {
		v := testTerrain.VMin + rng.Float64()*(testTerrain.VMax-testTerrain.VMin)
		if rng.Intn(2) == 0 {
			v = -v
		}
		m := Motion{OID: OID(i), Y0: rng.Float64() * 1000, T0: 0, V: v}
		motions = append(motions, m)
		if err := ix.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	// Update a third of them.
	for i := 0; i < 700; i++ {
		m := motions[i]
		if err := ix.Delete(m); err != nil {
			t.Fatal(err)
		}
		nm := Motion{OID: m.OID, Y0: m.At(10), T0: 10, V: -m.V}
		if nm.Y0 < 0 {
			nm.Y0 = 0
		}
		if nm.Y0 > 1000 {
			nm.Y0 = 1000
		}
		if err := ix.Insert(nm); err != nil {
			t.Fatal(err)
		}
		motions[i] = nm
	}
	// Queries against brute force (rounding slack for the compact codec).
	for trial := 0; trial < 20; trial++ {
		y1 := rng.Float64() * 850
		t1 := 10 + rng.Float64()*40
		q := Query{Y1: y1, Y2: y1 + 100, T1: t1, T2: t1 + 30}
		want := 0
		for _, m := range motions {
			if m.Matches(q) {
				want++
			}
		}
		got := len(collect(t, ix, q))
		if got < want-want/50-2 || got > want+want/50+2 {
			t.Fatalf("file-backed query: got %d, want ~%d", got, want)
		}
	}
	if fs.Stats().Writes == 0 {
		t.Fatal("file store saw no writes")
	}
}

// The buffered store must reduce counted I/O without changing answers.
func TestBufferedStoreEquivalence(t *testing.T) {
	// The kd index touches only two trees per insert, so the 4-page pool
	// keeps their upper paths resident. (Dual-B+ with c=4 spreads inserts
	// over 12 structures and a path-sized pool cannot help it — which is
	// also why the paper reports its update cost as the c-fold price.)
	build := func(store Store) Index1D {
		ix, err := NewKDIndex(store, KDConfig{Terrain: testTerrain})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 3000; i++ {
			v := testTerrain.VMin + rng.Float64()*1.2
			if rng.Intn(2) == 0 {
				v = -v
			}
			if err := ix.Insert(Motion{OID: OID(i), Y0: rng.Float64() * 1000, T0: 0, V: v}); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	raw := NewMemStore(0)
	rawIx := build(raw)
	bufBase := NewMemStore(0)
	buf := NewBufferedStore(bufBase, 4)
	bufIx := build(buf)

	q := Query{Y1: 200, Y2: 320, T1: 5, T2: 40}
	a := collect(t, rawIx, q)
	b := collect(t, bufIx, q)
	if len(a) != len(b) {
		t.Fatalf("buffered store changed the answer: %d vs %d", len(a), len(b))
	}
	// Build I/O through the buffer must be strictly lower than raw.
	if buf.Stats().Reads >= raw.Stats().Reads {
		t.Fatalf("buffer saved nothing: %d vs %d reads", buf.Stats().Reads, raw.Stats().Reads)
	}
}

func TestKineticFacade(t *testing.T) {
	objs := []KineticObject{
		{OID: 1, Y0: 0, V: 2},
		{OID: 2, Y0: 100, V: -1},
	}
	cs := Crossings(objs, 0, 100)
	if len(cs) != 1 {
		t.Fatalf("crossings = %v", cs)
	}
	st, err := NewKineticStructure(NewMemStore(0), objs, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	// At t=50: object 1 at 100, object 2 at 50.
	if err := st.Query(90, 110, 50, func(OID) { found++ }); err != nil {
		t.Fatal(err)
	}
	if found != 1 {
		t.Fatalf("found %d", found)
	}
}

// The robustness facade: an index built through the full production stack
// — Buffered(Retry(Checksum(Fault(mem)))) with transient faults — must
// answer exactly as one built on a clean store.
func TestPublicRobustnessStack(t *testing.T) {
	motions := make([]Motion, 200)
	for i := range motions {
		v := 0.2 + 0.2*float64(i%7)
		if i%2 == 1 {
			v = -v
		}
		motions[i] = Motion{OID: OID(i + 1), Y0: float64((i * 137) % 1000), T0: 0, V: v}
	}
	q := Query{Y1: 200, Y2: 600, T1: 20, T2: 60}

	build := func(store Store) []OID {
		ix, err := NewDualBPlusIndex(store, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: WideRecords})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range motions {
			if err := ix.Insert(m); err != nil {
				t.Fatal(err)
			}
		}
		return collect(t, ix, q)
	}

	want := build(NewMemStore(512))
	faulty := NewFaultStore(NewMemStore(512), FaultConfig{
		Seed:      1,
		Read:      OpFaults{FailProb: 0.1},
		Write:     OpFaults{FailProb: 0.1},
		Transient: true,
	})
	cs, err := NewChecksumStore(faulty)
	if err != nil {
		t.Fatal(err)
	}
	got := build(NewBufferedStore(NewRetryStore(cs, RetryPolicy{MaxAttempts: 16}), 4))
	if len(got) != len(want) {
		t.Fatalf("stacked store answered %d ids, clean store %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs: %v vs %v", i, got[i], want[i])
		}
	}
	if faulty.Counters().Total() == 0 {
		t.Fatal("no faults injected; test is vacuous")
	}
	if !IsTransient(ErrTransient) || IsTransient(ErrPageCorrupt) {
		t.Fatal("IsTransient misclassifies the exported sentinels")
	}
}

// A file store written through the public API must reopen with its pages
// and user metadata intact.
func TestPublicFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "smoke.mobidx")
	fs, err := NewFileStore(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	p, err := fs.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data, "hello, crash recovery")
	if err := fs.Write(p); err != nil {
		t.Fatal(err)
	}
	if err := fs.SetUserMeta([]byte{0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	id := p.ID
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != 256 {
		t.Fatalf("page size not recovered: %d", re.PageSize())
	}
	um := re.UserMeta()
	if len(um) < 2 || um[0] != 0xAB || um[1] != 0xCD {
		t.Fatalf("user meta not recovered: %x", um)
	}
	rp, err := re.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(rp.Data[:21]) != "hello, crash recovery" {
		t.Fatalf("page content lost: %q", rp.Data[:21])
	}
}

// The WAL facade: an index built inside atomic batches over a file-backed
// base and log survives an abrupt "crash" (no Close, no Checkpoint) and
// answers identically after recovery through the public API.
func TestPublicWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.pages")
	logPath := filepath.Join(dir, "wal.log")

	base, err := NewFileStore(basePath, 512)
	if err != nil {
		t.Fatal(err)
	}
	log, err := OpenFileLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := OpenWALStore(base, log, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var _ Batcher = ws // the public contract the index layer relies on

	ix, err := NewDualBPlusIndex(ws, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: WideRecords})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	ms := make([]Motion, 40)
	for i := range ms {
		v := testTerrain.VMin + (testTerrain.VMax-testTerrain.VMin)*rng.Float64()
		if i%2 == 1 {
			v = -v
		}
		ms[i] = Motion{OID: OID(i + 1), Y0: 1000 * rng.Float64(), T0: 0, V: v}
	}
	for _, m := range ms {
		if err := ix.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	q := Query{Y1: 200, Y2: 700, T1: 10, T2: 60}
	want := collect(t, ix, q)
	if len(want) == 0 {
		t.Fatal("query returned nothing; scenario is vacuous")
	}
	// Crash: drop every handle without Checkpoint or Close. Only what the
	// commit protocol already made durable may survive.
	if err := base.Close(); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	base2, err := OpenFileStore(basePath)
	if err != nil {
		t.Fatal(err)
	}
	defer base2.Close()
	log2, err := OpenFileLog(logPath)
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := OpenWALStore(base2, log2, WALConfig{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer ws2.Close()
	ix2, err := NewDualBPlusIndex(ws2, DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: WideRecords})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if err := ix2.Insert(m); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, ix2, q)
	if len(got) != len(want) {
		t.Fatalf("recovered index answers %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: %d, want %d", i, got[i], want[i])
		}
	}
}

// The public parallel-serving surface: QueryParallel through an Executor
// must return exactly the sequential answer at every worker count, and a
// WALSnapshot must serve committed bytes while a batch is open.
func TestPublicParallelQuery(t *testing.T) {
	ix, err := NewDualBPlusIndex(NewMemStore(0), DualBPlusConfig{Terrain: testTerrain, C: 4, Codec: WideRecords})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 800; i++ {
		v := testTerrain.VMin + (testTerrain.VMax-testTerrain.VMin)*rng.Float64()
		if i%2 == 1 {
			v = -v
		}
		if err := ix.Insert(Motion{OID: OID(i + 1), Y0: 1000 * rng.Float64(), T0: 0, V: v}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []Query{
		{Y1: 100, Y2: 900, T1: 5, T2: 80}, // large: decomposes into subqueries
		{Y1: 440, Y2: 460, T1: 10, T2: 25},
	} {
		want := collect(t, ix, q)
		for _, workers := range []int{1, 2, 8} {
			got, err := ix.QueryParallel(NewExecutor(workers), q)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if len(got) != len(want) {
				t.Fatalf("workers=%d: %d ids, want %d", workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d: result %d is %d, want %d", workers, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPublicWALSnapshot(t *testing.T) {
	ws, err := OpenWALStore(NewMemStore(256), NewMemLog(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ws.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		p.Data[i] = 0xAA
	}
	if err := RunBatch(ws, func() error { return ws.Write(p) }); err != nil {
		t.Fatal(err)
	}

	var snap *WALSnapshot = ws.Snapshot()
	if err := ws.Begin(); err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		p.Data[i] = 0xBB
	}
	if err := ws.Write(p); err != nil {
		t.Fatal(err)
	}
	got, err := snap.Read(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data[0] != 0xAA {
		t.Fatalf("snapshot observed a staged, uncommitted write: byte 0 = %#x", got.Data[0])
	}
	if err := ws.Rollback(); err != nil {
		t.Fatal(err)
	}
}

// TestPublicSubscriptionEngine drives the facade's continuous-query API
// end to end: subscribe, stream, update, advance across a boundary
// crossing, and check the drained deltas reconstruct a one-shot answer.
func TestPublicSubscriptionEngine(t *testing.T) {
	eng, err := NewSubscriptionEngine(SubscribeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if err := eng.Apply([]SubOp{
		{Insert: true, M: Motion{OID: 1, Y0: 90, V: 1}},
		{Insert: true, M: Motion{OID: 2, Y0: 500, V: -0.5}},
	}); err != nil {
		t.Fatal(err)
	}
	id, ch, err := eng.SubscribeStream(100, 200, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	// OID 1 sweeps [90, 100] over the window and already touches Y1.
	if d := <-ch; d.Kind != SubEnter || d.OID != 1 {
		t.Fatalf("initial delta %+v, want enter 1", d)
	}
	// Advance far enough that object 2 (at 500-0.5t) reaches the range.
	if err := eng.Advance(600); err != nil {
		t.Fatal(err)
	}
	ds, err := eng.Drain(id)
	if err != nil {
		t.Fatal(err)
	}
	members := map[OID]bool{}
	for _, d := range ds {
		switch d.Kind {
		case SubEnter:
			members[d.OID] = true
		case SubLeave:
			delete(members, d.OID)
		}
	}
	want := map[OID]bool{}
	q := Query{Y1: 100, Y2: 200, T1: 600, T2: 610}
	for _, m := range []Motion{{OID: 1, Y0: 90, V: 1}, {OID: 2, Y0: 500, V: -0.5}} {
		if m.Matches(q) {
			want[m.OID] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("inert scenario: no member at t=600")
	}
	if !reflect.DeepEqual(members, want) {
		t.Fatalf("reconstruction %v, want %v", members, want)
	}
	if err := eng.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Drain(id); !errors.Is(err, ErrUnknownSub) {
		t.Fatalf("drain after unsubscribe: %v, want ErrUnknownSub", err)
	}
}
