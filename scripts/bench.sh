#!/bin/sh
# Parallel serving benchmark: runs mobbench -throughput (mixed
# query/update workload at worker counts 1,2,4,8 over a simulated-latency
# disk) and writes the machine-readable report to BENCH_parallel.json in
# the repo root. The report includes queries/sec, p50/p99 latency, the
# 4-vs-1 speedup, and the parallel-vs-sequential differential status.
#
# Knobs (defaults in parentheses) are forwarded from the environment:
#   TP_N        object count (20000)
#   TP_QUERIES  queries per worker count (4000)
#   TP_WORKERS  comma-separated worker counts (1,2,4,8)
#   TP_IO       simulated latency per buffer-pool miss (150us)
#   BENCH_OUT   output path (BENCH_parallel.json)
set -eu

cd "$(dirname "$0")/.."

go run ./cmd/mobbench -throughput \
	-tpn "${TP_N:-20000}" \
	-tpqueries "${TP_QUERIES:-4000}" \
	-tpworkers "${TP_WORKERS:-1,2,4,8}" \
	-tpio "${TP_IO:-150us}" \
	-benchout "${BENCH_OUT:-BENCH_parallel.json}"
