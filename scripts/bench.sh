#!/bin/sh
# Benchmark driver.
#
# Default run regenerates both machine-readable reports in the repo root:
#
#   1. Parallel serving benchmark: mobbench -throughput (mixed
#      query/update workload at worker counts 1,2,4,8 over a
#      simulated-latency disk) -> BENCH_parallel.json with queries/sec,
#      p50/p99 latency, the 4-vs-1 speedup, mid-run bulk-reindex latch
#      hold time (TP_REBUILD=1), and the parallel-vs-sequential
#      differential status.
#   2. Build benchmark: mobbench -build (incremental vs bulk construction
#      of every access method) -> BENCH_build.json with wall time,
#      logical/physical page I/Os, bytes allocated and final page counts;
#      fails if the B+-tree bulk path is not >= 5x cheaper in physical
#      I/Os than incremental.
#   3. Ingest benchmark: mobbench -ingest (log-structured write tier vs
#      direct per-update tree mutation under an update-dominated load at
#      writer counts 1,2,4,8 over a simulated-fsync log) ->
#      BENCH_ingest.json with sustained update pairs/sec, update latency
#      percentiles, group-commit coalescing, and the tier-vs-flat query
#      rate; fails unless the tier sustains >= 3x updates/sec at 4
#      writers with query throughput within 20% of flat.
#
# Before/after comparison (benchstat-style, works on either report):
#
#   scripts/bench.sh compare old/BENCH_build.json BENCH_build.json
#
# Knobs (defaults in parentheses) are forwarded from the environment:
#   TP_N        object count (20000)
#   TP_QUERIES  queries per worker count (4000)
#   TP_WORKERS  comma-separated worker counts (1,2,4,8)
#   TP_IO       simulated latency per buffer-pool miss (150us)
#   TP_REBUILD  1 = bulk reindex mid-run in each throughput run (1)
#   BENCH_OUT   throughput output path (BENCH_parallel.json)
#   BUILD_N     records per structure for -build (100000)
#   BUILD_OUT   build output path (BENCH_build.json)
#   ING_N       object count for -ingest (20000)
#   ING_UPDATES update pairs per leg for -ingest (4000)
#   ING_WRITERS comma-separated writer counts (1,2,4,8)
#   ING_SYNC    simulated log fsync latency (2ms)
#   ING_OUT     ingest output path (BENCH_ingest.json)
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "compare" ]; then
	shift
	exec go run ./scripts/benchcmp "$@"
fi

rebuild_flag=""
if [ "${TP_REBUILD:-1}" = "1" ]; then
	rebuild_flag="-tprebuild"
fi

go run ./cmd/mobbench -throughput \
	-tpn "${TP_N:-20000}" \
	-tpqueries "${TP_QUERIES:-4000}" \
	-tpworkers "${TP_WORKERS:-1,2,4,8}" \
	-tpio "${TP_IO:-150us}" \
	$rebuild_flag \
	-benchout "${BENCH_OUT:-BENCH_parallel.json}"

go run ./cmd/mobbench -build \
	-buildn "${BUILD_N:-100000}" \
	-buildout "${BUILD_OUT:-BENCH_build.json}"

go run ./cmd/mobbench -ingest \
	-ingestn "${ING_N:-20000}" \
	-ingestupdates "${ING_UPDATES:-4000}" \
	-ingestwriters "${ING_WRITERS:-1,2,4,8}" \
	-ingestsync "${ING_SYNC:-2ms}" \
	-ingestout "${ING_OUT:-BENCH_ingest.json}"
