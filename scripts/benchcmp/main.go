// Command benchcmp is a benchstat-style before/after comparison for the
// mobbench JSON reports (BENCH_parallel.json, BENCH_build.json). It
// flattens every numeric leaf of both files into metric paths and prints
// old → new with the relative delta for each metric present in both, so a
// change's effect on QPS, latency, I/O counts or build time is one diff
// away:
//
//	scripts/bench.sh compare old/BENCH_build.json BENCH_build.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp OLD.json NEW.json\n")
		os.Exit(2)
	}
	oldM, err := flattenFile(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
	newM, err := flattenFile(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}

	keys := make([]string, 0, len(oldM))
	for k := range oldM {
		if _, ok := newM[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: no shared metrics between the two reports\n")
		os.Exit(1)
	}

	fmt.Printf("%-52s %14s %14s %9s\n", "metric", "old", "new", "delta")
	for _, k := range keys {
		o, n := oldM[k], newM[k]
		delta := "~"
		if o != 0 {
			delta = fmt.Sprintf("%+.1f%%", (n-o)/o*100)
		} else if n != 0 {
			delta = "new"
		}
		fmt.Printf("%-52s %14.6g %14.6g %9s\n", k, o, n, delta)
	}
	for k := range newM {
		if _, ok := oldM[k]; !ok {
			fmt.Printf("%-52s %14s %14.6g %9s\n", k, "-", newM[k], "added")
		}
	}
}

func flattenFile(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]float64{}
	flatten("", v, out)
	return out, nil
}

// flatten records every numeric leaf under its dotted path. Array elements
// are keyed by a stable identity when the element is an object with
// name-like fields (structure/method/workers), falling back to the index —
// so reordered result lists still line up.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			id := fmt.Sprintf("%d", i)
			if m, ok := child.(map[string]any); ok {
				if s := elemID(m); s != "" {
					id = s
				}
			}
			p := id
			if prefix != "" {
				p = prefix + "[" + id + "]"
			}
			flatten(p, child, out)
		}
	}
}

func elemID(m map[string]any) string {
	if s, ok := m["structure"].(string); ok {
		if meth, ok := m["method"].(string); ok {
			return s + "/" + meth
		}
		return s
	}
	if w, ok := m["workers"].(float64); ok {
		return fmt.Sprintf("workers=%g", w)
	}
	if n, ok := m["name"].(string); ok {
		return n
	}
	return ""
}
