#!/bin/sh
# Repo verification gate: formatting, vet, the mobidxlint invariant
# suite, build, full tests (shuffled), the concurrency suites under the
# race detector, a GOMAXPROCS stress matrix for the parallel serving
# paths, and fuzz smoke tests.
set -eu

cd "$(dirname "$0")/.."

# Packages that run under the race detector. Every internal package that
# launches a goroutine anywhere (production or test code) must be listed;
# TestRaceGateCoverage in internal/analysis parses this assignment and
# fails if the list falls behind the code.
RACE_PKGS="./internal/pager/... ./internal/core/... ./internal/twod/... \
	./internal/kdtree/... ./internal/kinetic/... ./internal/harness/... \
	./internal/ingest/... ./internal/leakcheck/... ./internal/shard/... \
	./internal/subscribe/... ./internal/workload/..."

echo "== gofmt -s =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== mobidxlint =="
# The project-invariant static-analysis suite (cmd/mobidxlint): buffer
# release pairing, WAL batch discipline, codec bounds, float equality,
# dropped errors, library panics, lock ordering, atomic/plain mixing,
# context flow, and goroutine lifecycle. Exits non-zero on any finding.
# The package listing is cached between runs (keyed on file mtimes), the
# SARIF artifact is written even when findings fail the gate, and the
# verbose run prints per-pass wall time.
mkdir -p .verifycache
go run ./cmd/mobidxlint -listcache .verifycache/golist.json -sarif ./... \
	> .verifycache/mobidxlint.sarif || true
go run ./cmd/mobidxlint -listcache .verifycache/golist.json -v ./...

echo "== go test (shuffled) =="
go test -shuffle=on ./...

echo "== go test -race (storage + parallel query + sharded serving layers) =="
# shellcheck disable=SC2086 — word splitting is the point
go test -race $RACE_PKGS

echo "== subscription storm (leak + race gated) =="
# The continuous-query engine under a live update storm: concurrent
# subscribe/unsubscribe/update/advance stress, Unsubscribe and Close
# mid-storm with leakcheck asserting no goroutine survives, and the
# differential oracle suite. -count=1 defeats the cache so the race
# detector really runs.
go test -race -count=1 -run 'Storm|Stress|Differential|Leak' ./internal/subscribe

echo "== chaos sweep (topology x fault x policy, race-gated) =="
# The sharded-serving chaos harness: every topology through every fault
# scenario with deterministic seeds, asserting byte-identical no-fault
# answers, exact healthy-union degraded answers with typed PartialErrors,
# and zero goroutine leaks — all under the race detector.
go test -race -count=1 -run 'TestChaos' ./internal/shard/chaostest

echo "== cluster crash sweep (kill points x fault schedules x topologies, race-gated) =="
# The durable-cluster lifecycle harness: kill-and-reopen a live band split
# at every write/sync boundary under every media failure mode and
# topology, asserting one manifest-proven topology on reboot (never a
# mix), byte-identical recovered answers, and idempotent resume; plus the
# fault-injected (non-crash) migration resume path and the durable shard
# recovery/lifecycle tests.
go test -race -count=1 -run 'TestClusterCrashSweep|TestClusterSplitFaultResume' \
	./internal/shard/chaostest
go test -race -count=1 -run 'TestCluster|TestShardCloseDuringHedgedReads|TestPartialError' \
	./internal/shard

echo "== ingest crash sweep (memtable-flush kill points x media modes, race-gated) =="
# The log-structured write tier's recovery harness: kill an ingesting
# shard at every log/base write-and-sync boundary across memtable
# freezes and base folds under every media failure mode, asserting the
# reboot lands on a batch boundary (complete or absent, never torn),
# answers a brute-force oracle exactly, and keeps folding afterwards;
# plus the group-commit torn-tail recovery tests in the pager.
go test -race -count=1 -run 'TestIngestCrashSweep' ./internal/shard/chaostest
go test -race -count=1 -run 'TestGroupCommit|TestTxn' ./internal/pager
go test -race -count=1 -run 'TestCrashSweepGroupCommitTxn' ./internal/pager/crashtest

echo "== stress matrix (GOMAXPROCS=1,4) =="
# The concurrency tests must hold both when goroutines interleave on one
# processor (maximal context-switch churn) and when they run truly in
# parallel. -count=1 defeats the test cache so both settings really run.
for procs in 1 4; do
	echo "-- GOMAXPROCS=$procs --"
	GOMAXPROCS=$procs go test -count=1 \
		-run 'Concurrent|Parallel|Stress|Snapshot|StatsDuringBuild|Executor|Throughput|Router|ShardBench|CloseUnderLoad|IngestBench' \
		./internal/pager ./internal/core ./internal/twod \
		./internal/kdtree ./internal/kinetic ./internal/harness \
		./internal/ingest ./internal/shard ./internal/shard/chaostest
done

echo "== zero-allocation gates =="
# The steady-state query hot loops must stay allocation-free above the
# buffer pool; testing.AllocsPerRun makes a regression a test failure.
go test -count=1 -run 'ZeroAlloc' ./internal/bptree

echo "== bench smoke =="
# One iteration of each benchmark: catches bit-rot in the benchmark code
# (and the bulk-vs-incremental build paths it drives) without timing
# anything.
go test -run '^$' -bench . -benchtime=1x ./internal/bptree

echo "== fuzz smoke =="
go test ./internal/bptree -run '^$' -fuzz '^FuzzDecodeNode$' -fuzztime=10s
go test ./internal/pager -run '^$' -fuzz '^FuzzDecodeWALRecord$' -fuzztime=10s
go test ./internal/geom -run '^$' -fuzz '^FuzzClipConvex$' -fuzztime=10s
go test ./internal/subscribe -run '^$' -fuzz '^FuzzMatcher$' -fuzztime=10s
go test ./internal/subscribe -run '^$' -fuzz '^FuzzKineticBoundary$' -fuzztime=10s
go test ./internal/ingest -run '^$' -fuzz '^FuzzBloom$' -fuzztime=10s

echo "verify: all checks passed"
