#!/bin/sh
# Repo verification gate: formatting, vet, build, full tests, and the
# pager robustness suite under the race detector.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (storage layer) =="
go test -race ./internal/pager/...

echo "== fuzz smoke =="
go test ./internal/bptree -run '^$' -fuzz '^FuzzDecodeNode$' -fuzztime=10s
go test ./internal/pager -run '^$' -fuzz '^FuzzDecodeWALRecord$' -fuzztime=10s

echo "verify: all checks passed"
